// Package server is the hardened query-serving subsystem: an HTTP/JSON
// front end over one shared exec.DB that runs the prepared SSB flights
// and small ad-hoc scan/filter/group requests concurrently, under the
// paper's detection modes.
//
// The serving layer adds what a long-running database process needs on
// top of the query engine:
//
//   - Admission control: a bounded in-flight semaphore plus a bounded
//     wait queue. A full queue or a queue-timeout sheds the request
//     with 429 instead of letting load pile onto the pool (overload
//     degrades to fast rejections, never to OOM).
//   - Cancellation: each request carries a context assembled from the
//     client connection and the requested deadline, threaded through
//     exec.Run into the morsel scheduler. Workers observe it between
//     morsels, so a disconnect or deadline stops the query within one
//     morsel boundary and returns every scratch buffer.
//   - Self-healing: requests may opt into RunWithRecovery, surfacing
//     the structured RecoveryReport (attempts, repaired positions,
//     quarantined columns, degraded fallback) in the response.
//   - Observability and lifecycle: /healthz, /readyz, a hand-rolled
//     Prometheus /metrics endpoint, and a graceful drain that stops
//     admitting work while in-flight queries finish.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ahead/internal/adapt"
	"ahead/internal/cluster"
	"ahead/internal/exec"
	"ahead/internal/faults"
	"ahead/internal/ops"
	"ahead/internal/ssb"
)

// Config assembles a Server. DB is the only required field.
type Config struct {
	// DB is the shared database every request runs against.
	DB *exec.DB
	// Pool is the shared morsel pool; nil runs queries serially.
	Pool *exec.Pool
	// Queries maps prepared-query names to plans. Nil uses the SSB
	// registry (Q1.1–Q4.3).
	Queries map[string]exec.QueryFunc

	// MaxInFlight bounds concurrently executing queries (default 8).
	MaxInFlight int
	// MaxQueue bounds requests waiting for an execution slot
	// (default 64). Requests beyond it are shed with 429.
	MaxQueue int
	// QueueTimeout bounds how long a request may wait for a slot
	// before being shed with 429 (default 1s).
	QueueTimeout time.Duration
	// DefaultDeadline applies when a request names none (default 10s);
	// MaxDeadline clamps requested deadlines (default 60s).
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration

	// Shard identifies this server's slice of a multi-shard cluster;
	// the zero value means single-node. It only labels the partials
	// served on POST /partial - the DB must already hold the matching
	// partition (ssb.NewShardSuite).
	Shard cluster.ShardSpec
	// Replica identifies which replica of the shard's slice this
	// server is (0-based). It is informational - stamped on partials so
	// the router's logs and metrics can attribute hedged answers.
	Replica int

	// Injector enables POST /inject, which flips bits in hardened base
	// columns so detection can be observed end to end. Nil disables
	// the endpoint (production posture).
	Injector *faults.Injector
	// Adapt attaches an adaptive-hardening manager: query detections
	// feed its per-column signals, and GET /adapt/status + POST
	// /adapt/policy are served. Nil disables the endpoints. The caller
	// owns the manager's tick loop (adapt.Manager.Run).
	Adapt *adapt.Manager
	// RecoveryRetries overrides the repair-retry budget for healing
	// requests; 0 keeps the exec default.
	RecoveryRetries int
}

// Server serves queries over HTTP. Create with New; it is safe for
// concurrent use by any number of connections.
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	sem    chan struct{}
	queued atomic.Int64
	// drainMu orders request registration against Drain: a request
	// either registers in wg before the drain flag flips, or observes
	// the flag and is refused. Without it, wg.Add races wg.Wait.
	drainMu sync.Mutex
	drain   atomic.Bool
	wg      sync.WaitGroup
	metrics *metrics
	inject  *injector
}

// New validates the config, applies defaults, and builds the route
// table.
func New(cfg Config) (*Server, error) {
	if cfg.DB == nil {
		return nil, fmt.Errorf("server: config needs a DB")
	}
	if cfg.Queries == nil {
		cfg.Queries = ssb.Queries
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 8
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 64
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = time.Second
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 10 * time.Second
	}
	if cfg.MaxDeadline <= 0 {
		cfg.MaxDeadline = 60 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		metrics: newMetrics(),
	}
	if cfg.Injector != nil {
		in, err := newInjector(cfg.DB, cfg.Injector)
		if err != nil {
			return nil, err
		}
		s.inject = in
	}
	s.mux.HandleFunc("POST /query", s.handleQuery)
	s.mux.HandleFunc("POST /partial", s.handlePartial)
	s.mux.HandleFunc("POST /inject", s.handleInject)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /sync/digests", s.handleSyncDigests)
	s.mux.HandleFunc("GET /sync/chunk", s.handleSyncChunk)
	s.mux.HandleFunc("POST /sync/from-peer", s.handleSyncFromPeer)
	s.mux.HandleFunc("GET /adapt/status", s.handleAdaptStatus)
	s.mux.HandleFunc("POST /adapt/policy", s.handleAdaptPolicy)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Drain stops admitting queries (readyz flips to 503, new queries get
// 503) and waits for in-flight ones to finish or the context to
// expire. In-flight queries are not cancelled: they already hold a
// slot and complete under their own deadlines.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.drain.Store(true)
	s.drainMu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// QueryRequest is the body of POST /query. Exactly one of Query
// (a prepared flight, e.g. "Q1.1") and AdHoc must be set.
type QueryRequest struct {
	Query  string         `json:"query,omitempty"`
	AdHoc  *ssb.AdHocSpec `json:"adhoc,omitempty"`
	Mode   string         `json:"mode,omitempty"`   // default "continuous"
	Flavor string         `json:"flavor,omitempty"` // default "scalar"
	// DeadlineMS bounds execution; 0 uses the server default.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Heal runs under RunWithRecovery: detected base-column corruption
	// is repaired from the replica and the query retried.
	Heal bool `json:"heal,omitempty"`
	// NoFuse disables operator fusion (diagnostics).
	NoFuse bool `json:"no_fuse,omitempty"`
}

// RecoveryInfo is the wire form of exec.RecoveryReport.
type RecoveryInfo struct {
	Attempts     int                 `json:"attempts"`
	Repaired     map[string][]uint64 `json:"repaired,omitempty"`
	Intermediate int                 `json:"intermediate,omitempty"`
	Quarantined  []string            `json:"quarantined,omitempty"`
	Degraded     bool                `json:"degraded,omitempty"`
	FinalMode    string              `json:"final_mode"`
}

// QueryResponse is the body of a successful POST /query.
type QueryResponse struct {
	Query  string `json:"query"`
	Mode   string `json:"mode"`
	Flavor string `json:"flavor"`
	Rows   int    `json:"rows"`
	// Keys and Aggs are the result relation; scalar results have one
	// row and no keys.
	Keys [][]uint64 `json:"keys,omitempty"`
	Aggs []uint64   `json:"aggs"`
	// Detected maps each column with detected corruption to the
	// affected positions (non-healing runs report and leave the data
	// in place; healing runs surface repairs in Recovery instead).
	Detected  map[string][]uint64 `json:"detected,omitempty"`
	Recovery  *RecoveryInfo       `json:"recovery,omitempty"`
	ElapsedMS float64             `json:"elapsed_ms"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// maxRequestBytes bounds a /query or /inject body; ad-hoc specs are
// tiny, so anything near the cap is hostile.
const maxRequestBytes = 1 << 20

// decodeRequest parses a strict JSON body: unknown fields and trailing
// garbage are errors, so a typo ("mod": "dmr") cannot silently run
// under a default.
func decodeRequest(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return fmt.Errorf("trailing data after request object")
	}
	return nil
}

// resolve turns the request into a runnable plan, mode, and flavor.
// Every validation error surfaces here, before admission.
func (s *Server) resolve(req *QueryRequest) (name string, plan exec.QueryFunc, m exec.Mode, f ops.Flavor, status int, err error) {
	switch {
	case req.Query != "" && req.AdHoc != nil:
		return "", nil, 0, 0, http.StatusBadRequest, fmt.Errorf("set exactly one of query and adhoc")
	case req.Query != "":
		fn, ok := s.cfg.Queries[req.Query]
		if !ok {
			return "", nil, 0, 0, http.StatusNotFound, fmt.Errorf("unknown query %q", req.Query)
		}
		name, plan = req.Query, fn
	case req.AdHoc != nil:
		fn, cerr := ssb.CompileAdHoc(s.cfg.DB, *req.AdHoc)
		if cerr != nil {
			return "", nil, 0, 0, http.StatusBadRequest, cerr
		}
		name, plan = "adhoc", fn
	default:
		return "", nil, 0, 0, http.StatusBadRequest, fmt.Errorf("set exactly one of query and adhoc")
	}
	// The default is the strongest always-on detection variant; an
	// unknown mode is an error, never a silent unprotected run.
	m = exec.Continuous
	if req.Mode != "" {
		if m, err = exec.ParseMode(req.Mode); err != nil {
			return "", nil, 0, 0, http.StatusBadRequest, err
		}
	}
	f = ops.Scalar
	if req.Flavor != "" {
		if f, err = ops.ParseFlavor(req.Flavor); err != nil {
			return "", nil, 0, 0, http.StatusBadRequest, err
		}
	}
	return name, plan, m, f, 0, nil
}

// deadline clamps the requested deadline into (0, MaxDeadline].
func (s *Server) deadline(req *QueryRequest) (time.Duration, error) {
	if req.DeadlineMS < 0 {
		return 0, fmt.Errorf("negative deadline_ms")
	}
	d := time.Duration(req.DeadlineMS) * time.Millisecond
	if d == 0 {
		d = s.cfg.DefaultDeadline
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d, nil
}

// admit applies admission control: join the bounded wait queue, then
// wait for an execution slot until the queue timeout or the request
// context fires. It returns a release func on success and a shed
// status (429, or 499-style context error) otherwise.
func (s *Server) admit(ctx context.Context) (release func(), status int, err error) {
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		return nil, http.StatusTooManyRequests, fmt.Errorf("wait queue full (%d)", s.cfg.MaxQueue)
	}
	defer s.queued.Add(-1)
	t := time.NewTimer(s.cfg.QueueTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		return func() { <-s.sem }, 0, nil
	case <-t.C:
		return nil, http.StatusTooManyRequests, fmt.Errorf("queue timeout after %v", s.cfg.QueueTimeout)
	case <-ctx.Done():
		return nil, statusForCtx(ctx.Err()), ctx.Err()
	}
}

// statusForCtx maps a context error on the serving path to an HTTP
// status: deadline → 504, client disconnect → 499 (nginx convention;
// the client is gone, the code is for the access log and metrics).
func statusForCtx(err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return http.StatusGatewayTimeout
	}
	return 499
}

// enter registers an in-flight request unless the server is draining.
func (s *Server) enter() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.drain.Load() {
		return false
	}
	s.wg.Add(1)
	return true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.wg.Done()

	var req QueryRequest
	if err := decodeRequest(r, &req); err != nil {
		s.metrics.failed.Add(1)
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	name, plan, mode, flavor, status, err := s.resolve(&req)
	if err != nil {
		s.metrics.failed.Add(1)
		writeError(w, status, "%v", err)
		return
	}
	d, err := s.deadline(&req)
	if err != nil {
		s.metrics.failed.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// The request context already ends on client disconnect; the
	// deadline bounds execution on top of that.
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()

	release, status, err := s.admit(ctx)
	if err != nil {
		if status == http.StatusTooManyRequests {
			s.metrics.shed.Add(1)
		} else {
			s.metrics.canceled.Add(1)
		}
		writeError(w, status, "%v", err)
		return
	}
	defer release()

	start := time.Now()
	resp, runErr := s.run(ctx, name, plan, mode, flavor, &req)
	elapsed := time.Since(start)
	s.metrics.latency.observe(elapsed)

	if runErr != nil {
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			s.metrics.canceled.Add(1)
			writeError(w, statusForCtx(ctx.Err()), "query cancelled: %v", runErr)
			return
		}
		s.metrics.failed.Add(1)
		writeError(w, http.StatusInternalServerError, "query failed: %v", runErr)
		return
	}
	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
	s.metrics.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// handlePartial serves one shard's contribution to a scatter-gather
// query: the same admission, deadline, and cancellation pipeline as
// /query, but the response is a cluster.Partial - group keys and
// aggregate sums still AN-hardened, decoded and verified only at the
// router's merge point. Healing is a whole-query concern and not
// meaningful per shard, so heal requests are rejected here.
func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.wg.Done()

	var req QueryRequest
	if err := decodeRequest(r, &req); err != nil {
		s.metrics.failed.Add(1)
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Heal {
		s.metrics.failed.Add(1)
		writeError(w, http.StatusBadRequest, "heal is not supported on /partial")
		return
	}
	name, plan, mode, flavor, status, err := s.resolve(&req)
	if err != nil {
		s.metrics.failed.Add(1)
		writeError(w, status, "%v", err)
		return
	}
	d, err := s.deadline(&req)
	if err != nil {
		s.metrics.failed.Add(1)
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), d)
	defer cancel()

	release, status, err := s.admit(ctx)
	if err != nil {
		if status == http.StatusTooManyRequests {
			s.metrics.shed.Add(1)
		} else {
			s.metrics.canceled.Add(1)
		}
		writeError(w, status, "%v", err)
		return
	}
	defer release()

	start := time.Now()
	part, runErr := s.runPartial(ctx, name, plan, mode, flavor, &req)
	elapsed := time.Since(start)
	s.metrics.latency.observe(elapsed)

	if runErr != nil {
		if errors.Is(runErr, context.Canceled) || errors.Is(runErr, context.DeadlineExceeded) {
			s.metrics.canceled.Add(1)
			writeError(w, statusForCtx(ctx.Err()), "query cancelled: %v", runErr)
			return
		}
		s.metrics.failed.Add(1)
		writeError(w, http.StatusInternalServerError, "query failed: %v", runErr)
		return
	}
	part.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
	s.metrics.served.Add(1)
	writeJSON(w, http.StatusOK, part)
}

// runPartial executes the plan with the pre-softening aggregate state
// captured and hardens it for the wire. The shard's own error log
// rides along so in-shard detections reach the merged response.
func (s *Server) runPartial(ctx context.Context, name string, plan exec.QueryFunc, mode exec.Mode, flavor ops.Flavor, req *QueryRequest) (*cluster.Partial, error) {
	runOpts := []exec.RunOption{exec.WithContext(ctx), exec.WithFusion(!req.NoFuse)}
	if s.cfg.Pool != nil {
		runOpts = append(runOpts, exec.WithPool(s.cfg.Pool))
	}
	var capture exec.Capture
	runOpts = append(runOpts, exec.WithCapture(&capture))

	_, log, err := exec.Run(s.cfg.DB, mode, flavor, plan, runOpts...)
	if err != nil {
		return nil, err
	}
	part, err := cluster.EncodePartial(name, mode.String(), flavor.String(), s.cfg.Shard, capture.Groups, capture.Aggs)
	if err != nil {
		return nil, err
	}
	part.Replica = s.cfg.Replica
	if log.Count() > 0 {
		s.metrics.detected.Add(uint64(log.Count()))
		part.Detected = make(map[string][]uint64)
		for _, col := range log.Columns() {
			pos, perr := log.Positions(col)
			if perr != nil {
				return nil, perr
			}
			part.Detected[col] = pos
		}
		s.noteDetections(part.Detected)
	}
	return part, nil
}

// run executes the resolved plan and shapes the response. Healing
// requests go through RunWithRecovery; plain ones through exec.Run
// with the per-run error log marshalled per column.
func (s *Server) run(ctx context.Context, name string, plan exec.QueryFunc, mode exec.Mode, flavor ops.Flavor, req *QueryRequest) (*QueryResponse, error) {
	resp := &QueryResponse{Query: name, Mode: mode.String(), Flavor: flavor.String()}
	runOpts := []exec.RunOption{exec.WithContext(ctx), exec.WithFusion(!req.NoFuse)}
	if s.cfg.Pool != nil {
		runOpts = append(runOpts, exec.WithPool(s.cfg.Pool))
	}

	if req.Heal {
		recOpts := []exec.RecoveryOption{
			exec.WithDegradedFallback(true),
			exec.WithRecoveryRunOptions(runOpts...),
		}
		if s.cfg.RecoveryRetries > 0 {
			recOpts = append(recOpts, exec.WithMaxRetries(s.cfg.RecoveryRetries))
		}
		res, rep, err := exec.RunWithRecovery(s.cfg.DB, mode, flavor, plan, recOpts...)
		if err != nil {
			return nil, err
		}
		if rep.Attempts > 1 {
			s.metrics.repairRetries.Add(uint64(rep.Attempts - 1))
		}
		s.metrics.detected.Add(uint64(rep.RepairedCount() + rep.Intermediate))
		s.noteDetections(rep.Repaired)
		resp.Recovery = &RecoveryInfo{
			Attempts:     rep.Attempts,
			Repaired:     rep.Repaired,
			Intermediate: rep.Intermediate,
			Quarantined:  rep.Quarantined,
			Degraded:     rep.Degraded,
			FinalMode:    rep.FinalMode.String(),
		}
		resp.Keys, resp.Aggs, resp.Rows = res.Keys, res.Aggs, res.Rows()
		return resp, nil
	}

	res, log, err := exec.Run(s.cfg.DB, mode, flavor, plan, runOpts...)
	if err != nil {
		return nil, err
	}
	if log.Count() > 0 {
		s.metrics.detected.Add(uint64(log.Count()))
		resp.Detected = make(map[string][]uint64)
		for _, col := range log.Columns() {
			pos, perr := log.Positions(col)
			if perr != nil {
				return nil, perr
			}
			resp.Detected[col] = pos
		}
		s.noteDetections(resp.Detected)
	}
	resp.Keys, resp.Aggs, resp.Rows = res.Keys, res.Aggs, res.Rows()
	return resp, nil
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.drain.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte("draining\n"))
		return
	}
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write([]byte("ready\n"))
}
