package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ahead/internal/exec"
	"ahead/internal/faults"
	"ahead/internal/ops"
	"ahead/internal/ssb"
	"ahead/internal/storage"
)

// ssbFixture builds the shared clean SSB suite once; tests that
// corrupt data build their own.
var (
	ssbOnce  sync.Once
	ssbSuite *ssb.Suite
	ssbErr   error
)

func cleanSuite(t *testing.T) *ssb.Suite {
	t.Helper()
	ssbOnce.Do(func() {
		ssbSuite, _, ssbErr = ssb.NewSuite(0.002, 7, 1)
	})
	if ssbErr != nil {
		t.Fatal(ssbErr)
	}
	return ssbSuite
}

// tinyDB is a two-column table for tests that need custom plans
// (admission, cancellation, fuzzing) without the SSB build cost.
func tinyDB(t testing.TB) *exec.DB {
	t.Helper()
	tb := storage.NewTable("t")
	v, err := storage.NewColumn("v", storage.TinyInt)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.NewColumn("w", storage.Int)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 256; i++ {
		v.Append(i % 50)
		w.Append(i * 3)
	}
	for _, c := range []*storage.Column{v, w} {
		if err := tb.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	db, err := exec.NewDB([]*storage.Table{tb}, storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// sumPlan sums w where v in [10, 19] — a real plan over tinyDB that
// exercises filter/gather/sum under every mode.
func sumPlan(q *exec.Query) (*ops.Result, error) {
	vCol, err := q.Col("t", "v")
	if err != nil {
		return nil, err
	}
	sel, err := ops.Filter(vCol, 10, 19, q.Opts())
	if err != nil {
		return nil, err
	}
	wCol, err := q.Col("t", "w")
	if err != nil {
		return nil, err
	}
	vec, err := ops.Gather(wCol, sel, q.Opts())
	if err != nil {
		return nil, err
	}
	sum, err := ops.SumTotal(q.PreAggregate(vec), q.Opts())
	if err != nil {
		return nil, err
	}
	return q.FinishScalar(sum)
}

func postQuery(t *testing.T, url string, req QueryRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func decodeResponse(t *testing.T, data []byte) QueryResponse {
	t.Helper()
	var qr QueryResponse
	if err := json.Unmarshal(data, &qr); err != nil {
		t.Fatalf("decode response: %v\n%s", err, data)
	}
	return qr
}

func TestServePreparedMatchesEngine(t *testing.T) {
	suite := cleanSuite(t)
	srv, err := New(Config{DB: suite.DB})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	plan, _ := ssb.LookupQuery("Q1.1")
	want, log, err := exec.Run(suite.DB, exec.Continuous, ops.Scalar, plan)
	if err != nil {
		t.Fatal(err)
	}
	if log.Count() != 0 {
		t.Fatalf("clean data logged %d detections", log.Count())
	}

	resp, data := postQuery(t, ts.URL, QueryRequest{Query: "Q1.1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	qr := decodeResponse(t, data)
	if qr.Mode != exec.Continuous.String() || qr.Flavor != "scalar" {
		t.Fatalf("defaults not applied: mode %q flavor %q", qr.Mode, qr.Flavor)
	}
	if !reflect.DeepEqual(qr.Aggs, want.Aggs) || qr.Rows != want.Rows() {
		t.Fatalf("served result diverges from engine: %v vs %v", qr.Aggs, want.Aggs)
	}
	if len(qr.Detected) != 0 {
		t.Fatalf("clean run reported detections: %v", qr.Detected)
	}
}

func TestServeAdHocMatchesEngine(t *testing.T) {
	suite := cleanSuite(t)
	srv, err := New(Config{DB: suite.DB})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	spec := ssb.AdHocSpec{
		Table: "lineorder", Agg: "sum", AggCol: "lo_revenue",
		Preds:   []ssb.AdHocPred{{Col: "lo_quantity", Lo: 10, Hi: 30}},
		GroupBy: []string{"lo_discount"},
	}
	plan, err := ssb.CompileAdHoc(suite.DB, spec)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := exec.Run(suite.DB, exec.LateOnetime, ops.Blocked, plan)
	if err != nil {
		t.Fatal(err)
	}

	resp, data := postQuery(t, ts.URL, QueryRequest{AdHoc: &spec, Mode: "late", Flavor: "blocked"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	qr := decodeResponse(t, data)
	if !reflect.DeepEqual(qr.Aggs, want.Aggs) || !reflect.DeepEqual(qr.Keys, want.Keys) {
		t.Fatalf("ad-hoc result diverges from engine")
	}
}

func TestRequestValidation(t *testing.T) {
	suite := cleanSuite(t)
	srv, err := New(Config{DB: suite.DB})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"garbage", `{"query": `, http.StatusBadRequest},
		{"unknown field", `{"query":"Q1.1","mod":"dmr"}`, http.StatusBadRequest},
		{"trailing data", `{"query":"Q1.1"}{"query":"Q1.2"}`, http.StatusBadRequest},
		{"neither", `{}`, http.StatusBadRequest},
		{"both", `{"query":"Q1.1","adhoc":{"table":"lineorder","agg":"count"}}`, http.StatusBadRequest},
		{"unknown query", `{"query":"Q9.9"}`, http.StatusNotFound},
		{"unknown mode", `{"query":"Q1.1","mode":"unprotectedd"}`, http.StatusBadRequest},
		{"unknown flavor", `{"query":"Q1.1","flavor":"simd"}`, http.StatusBadRequest},
		{"negative deadline", `{"query":"Q1.1","deadline_ms":-5}`, http.StatusBadRequest},
		{"bad adhoc table", `{"adhoc":{"table":"nope","agg":"count"}}`, http.StatusBadRequest},
		{"bad adhoc agg", `{"adhoc":{"table":"lineorder","agg":"median"}}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}
}

// TestConcurrentSessionsMatchSerialReference is the subsystem's
// correctness gate: many concurrent clients over one shared corrupted
// DB, pool-parallel execution, and every response's detected-error set
// must equal the serial single-threaded reference for its query.
func TestConcurrentSessionsMatchSerialReference(t *testing.T) {
	suite, _, err := ssb.NewSuite(0.002, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Plant corruption in columns every flight touches (the date FK)
	// plus the Q1 measure columns, then freeze: detection never
	// mutates, so the reference stays valid for the whole test.
	in := faults.NewInjector(99)
	hard := suite.DB.Hardened("lineorder")
	for _, colName := range []string{"lo_orderdate", "lo_discount", "lo_extendedprice", "lo_quantity"} {
		col, err := hard.Column(colName)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := in.FlipRandom(col, 3, 2); err != nil {
			t.Fatal(err)
		}
	}

	queries := []string{"Q1.1", "Q1.2", "Q1.3", "Q2.1", "Q3.1", "Q4.1"}
	type reference struct {
		res      *ops.Result
		detected map[string][]uint64
	}
	refs := make(map[string]reference)
	for _, name := range queries {
		plan, _ := ssb.LookupQuery(name)
		res, log, err := exec.Run(suite.DB, exec.Continuous, ops.Scalar, plan)
		if err != nil {
			t.Fatal(err)
		}
		det := make(map[string][]uint64)
		for _, col := range log.Columns() {
			pos, err := log.Positions(col)
			if err != nil {
				t.Fatal(err)
			}
			det[col] = pos
		}
		refs[name] = reference{res: res, detected: det}
	}

	pool := exec.NewPool(4)
	defer pool.Close()
	srv, err := New(Config{DB: suite.DB, Pool: pool, MaxInFlight: 8, MaxQueue: 64})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const clients = 8
	const perClient = 12
	errs := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				name := queries[(c+i)%len(queries)]
				body, _ := json.Marshal(QueryRequest{Query: name})
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				data, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("%s: status %d: %s", name, resp.StatusCode, data)
					return
				}
				var qr QueryResponse
				if err := json.Unmarshal(data, &qr); err != nil {
					errs <- fmt.Errorf("%s: %v", name, err)
					return
				}
				ref := refs[name]
				if !reflect.DeepEqual(qr.Aggs, ref.res.Aggs) || !reflect.DeepEqual(qr.Keys, ref.res.Keys) {
					errs <- fmt.Errorf("%s: result diverges from serial reference", name)
					return
				}
				got := qr.Detected
				if got == nil {
					got = map[string][]uint64{}
				}
				if len(ref.detected) != len(got) || !reflect.DeepEqual(map[string][]uint64(got), ref.detected) {
					errs <- fmt.Errorf("%s: detected %v, want %v", name, got, ref.detected)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// gatedQueries returns a query registry with a plan that blocks until
// the gate closes — the tool for admission and drain tests.
func gatedQueries(gate chan struct{}) map[string]exec.QueryFunc {
	return map[string]exec.QueryFunc{
		"slow": func(q *exec.Query) (*ops.Result, error) {
			ctx := q.Opts().Ctx
			select {
			case <-gate:
				return &ops.Result{Aggs: []uint64{1}}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		},
		"sum": sumPlan,
	}
}

func TestAdmissionControlSheds(t *testing.T) {
	gate := make(chan struct{})
	srv, err := New(Config{
		DB: tinyDB(t), Queries: gatedQueries(gate),
		MaxInFlight: 1, MaxQueue: 2, QueueTimeout: 30 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const n = 6
	statuses := make(chan int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/query", "application/json",
				strings.NewReader(`{"query":"slow"}`))
			if err != nil {
				statuses <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses <- resp.StatusCode
		}()
	}
	time.Sleep(150 * time.Millisecond) // let the queue fill and time out
	close(gate)
	wg.Wait()
	close(statuses)

	counts := map[int]int{}
	for s := range statuses {
		counts[s]++
	}
	if counts[http.StatusOK] < 1 {
		t.Fatalf("no request served: %v", counts)
	}
	if counts[http.StatusTooManyRequests] < 1 {
		t.Fatalf("overload did not shed: %v", counts)
	}
	if counts[http.StatusOK]+counts[http.StatusTooManyRequests] != n {
		t.Fatalf("unexpected statuses under overload: %v", counts)
	}
}

func TestDeadlineCancelsQuery(t *testing.T) {
	gate := make(chan struct{}) // never closed: the query only ends via ctx
	defer close(gate)
	srv, err := New(Config{DB: tinyDB(t), Queries: gatedQueries(gate)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, data := postQuery(t, ts.URL, QueryRequest{Query: "slow", DeadlineMS: 50})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, data)
	}
	if got := srv.metrics.canceled.Load(); got != 1 {
		t.Fatalf("canceled counter %d, want 1", got)
	}
}

func TestClientDisconnectCancelsQuery(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	srv, err := New(Config{DB: tinyDB(t), Queries: gatedQueries(gate)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query",
		strings.NewReader(`{"query":"slow"}`))
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("cancelled request returned a response")
	}
	// The handler observes the disconnect asynchronously; wait for the
	// canceled counter rather than racing it.
	deadline := time.Now().Add(2 * time.Second)
	for srv.metrics.canceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("server never recorded the disconnect cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDrainStopsAdmissionAndWaits(t *testing.T) {
	gate := make(chan struct{})
	srv, err := New(Config{DB: tinyDB(t), Queries: gatedQueries(gate)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	inflight := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/query", "application/json",
			strings.NewReader(`{"query":"slow"}`))
		if err != nil {
			inflight <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		inflight <- resp.StatusCode
	}()
	// Wait until the request holds its slot.
	for len(srv.sem) == 0 {
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	for !srv.drain.Load() {
		time.Sleep(time.Millisecond)
	}

	if resp, err := http.Get(ts.URL + "/readyz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("readyz during drain: %d", resp.StatusCode)
		}
	}
	if resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"query":"sum"}`)); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("query during drain: %d", resp.StatusCode)
		}
	}

	close(gate)
	if status := <-inflight; status != http.StatusOK {
		t.Fatalf("in-flight request finished %d during drain, want 200", status)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestHealSurfacesRecovery(t *testing.T) {
	suite, _, err := ssb.NewSuite(0.002, 13, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := faults.NewInjector(5)
	col, err := suite.DB.Hardened("lineorder").Column("lo_discount")
	if err != nil {
		t.Fatal(err)
	}
	flipped, err := in.FlipRandom(col, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	srv, err := New(Config{DB: suite.DB})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, data := postQuery(t, ts.URL, QueryRequest{Query: "Q1.1", Heal: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	qr := decodeResponse(t, data)
	if qr.Recovery == nil {
		t.Fatal("healing run returned no recovery report")
	}
	if len(flipped) > 0 && qr.Recovery.Attempts < 2 && len(qr.Recovery.Repaired) == 0 {
		t.Fatalf("corruption present but nothing repaired: %+v", qr.Recovery)
	}
	// The heal must actually hold: a follow-up plain run is clean.
	resp, data = postQuery(t, ts.URL, QueryRequest{Query: "Q1.1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-heal status %d: %s", resp.StatusCode, data)
	}
	if qr := decodeResponse(t, data); len(qr.Detected) != 0 {
		t.Fatalf("detections survived healing: %v", qr.Detected)
	}
}

func TestInjectEndpoint(t *testing.T) {
	suite, _, err := ssb.NewSuite(0.002, 17, 1)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{DB: suite.DB, Injector: faults.NewInjector(3)})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/inject", "application/json",
		strings.NewReader(`{"col":"lo_discount","count":2}`))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inject status %d: %s", resp.StatusCode, data)
	}
	var ir InjectResponse
	if err := json.Unmarshal(data, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Col != "lo_discount" || len(ir.Positions) != 2 {
		t.Fatalf("unexpected inject response: %+v", ir)
	}

	// A hardened query over the corrupted column must detect at the
	// injected positions (weight-2 flips off a valid code word).
	resp2, data2 := postQuery(t, ts.URL, QueryRequest{Query: "Q1.1"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp2.StatusCode, data2)
	}
	qr := decodeResponse(t, data2)
	if len(qr.Detected) == 0 {
		t.Fatalf("no detections after injecting into lo_discount")
	}

	// Disabled posture: no injector, endpoint refuses.
	off, err := New(Config{DB: suite.DB})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(off)
	defer ts2.Close()
	resp3, err := http.Post(ts2.URL+"/inject", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusForbidden {
		t.Fatalf("disabled inject status %d, want 403", resp3.StatusCode)
	}
}

func TestMetricsExposition(t *testing.T) {
	pool := exec.NewPool(2)
	defer pool.Close()
	srv, err := New(Config{DB: tinyDB(t), Queries: map[string]exec.QueryFunc{"sum": sumPlan}, Pool: pool})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 0; i < 3; i++ {
		resp, data := postQuery(t, ts.URL, QueryRequest{Query: "sum"})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	for _, want := range []string{
		"ahead_queries_served_total 3",
		"ahead_queries_shed_total 0",
		"ahead_query_latency_seconds_count 3",
		"ahead_pool_queue_depth",
		"ahead_scratch_live_buffers",
		"ahead_goroutines",
		`ahead_query_latency_seconds_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestServerNoScratchLeak: a burst of served, shed, and cancelled
// requests must leave the scratch arena balanced — the serving-layer
// face of the pool-shutdown leak fix.
func TestServerNoScratchLeak(t *testing.T) {
	suite := cleanSuite(t)
	pool := exec.NewPool(4)
	defer pool.Close()
	gateQs := map[string]exec.QueryFunc{"sum": sumPlan}
	for name, fn := range ssb.Queries {
		gateQs[name] = fn
	}
	srv, err := New(Config{DB: suite.DB, Queries: gateQs, Pool: pool, MaxInFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	before := ops.LiveScratch()
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				req := QueryRequest{Query: "Q1.1"}
				if i%2 == 1 {
					req.Query = "Q3.1"
					req.DeadlineMS = 1 // near-certain cancellation mid-plan
				}
				body, _ := json.Marshal(req)
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	if got := ops.LiveScratch(); got != before {
		t.Fatalf("scratch leak across serving burst: %d live before, %d after", before, got)
	}
}
