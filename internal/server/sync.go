// Anti-entropy endpoints: this server's side of the replica sync
// protocol (cluster/sync.go). The GET endpoints publish what this
// replica holds - per-column chunk digests, bloom summary, raw chunks -
// and POST /sync/from-peer makes this replica *pull* from a named peer:
// compare digests, fetch diverged chunks, AN-verify every word, heal
// the hardened column (and its mirrors), and lift the quarantine once
// the column checks clean. The peer is authoritative for mismatching
// chunks; verification on receipt means a corrupt peer can fail a sync
// but never make local data worse.
package server

import (
	"context"
	"net/http"
	"sort"
	"strconv"

	"ahead/internal/cluster"
	"ahead/internal/storage"
)

// syncChunkRows is the digest and transfer granularity this server
// publishes - the persist format's default, so snapshot files, repair
// sources, and the wire all speak the same chunk coordinates.
const syncChunkRows = storage.DefaultChunkRows

// hardenedColumns enumerates this DB's hardened columns in stable
// (table, column) order.
func (s *Server) hardenedColumns() []cluster.ColumnDigest {
	var out []cluster.ColumnDigest
	tables := s.cfg.DB.Tables()
	sort.Strings(tables)
	for _, name := range tables {
		hTab := s.cfg.DB.Hardened(name)
		if hTab == nil {
			continue
		}
		for _, hc := range hTab.Columns() {
			code := hc.Code()
			if code == nil {
				continue
			}
			out = append(out, cluster.ColumnDigest{
				Table:    name,
				Column:   hc.Name(),
				Rows:     hc.Len(),
				Chunks:   storage.NumChunks(hc.Len(), syncChunkRows),
				CodeA:    code.A(),
				CodeBits: code.DataBits(),
			})
		}
	}
	return out
}

// handleSyncDigests serves GET /sync/digests: without parameters, the
// summary (column metadata + bloom filter over every chunk digest);
// with ?table=&column=, the exact CRC list for one column.
func (s *Server) handleSyncDigests(w http.ResponseWriter, r *http.Request) {
	table, column := r.URL.Query().Get("table"), r.URL.Query().Get("column")
	if (table == "") != (column == "") {
		writeError(w, http.StatusBadRequest, "set both table and column, or neither")
		return
	}
	if table != "" {
		crcs, err := s.cfg.DB.ColumnChunkCRCs(table, column, syncChunkRows)
		if err != nil {
			writeError(w, http.StatusNotFound, "%v", err)
			return
		}
		writeJSON(w, http.StatusOK, &cluster.ChunkCRCList{
			Version: cluster.SyncVersion, Table: table, Column: column,
			ChunkRows: syncChunkRows, CRCs: crcs,
		})
		return
	}
	cols := s.hardenedColumns()
	entries := 0
	for _, c := range cols {
		entries += c.Chunks
	}
	bloom := cluster.NewBloom(entries)
	for _, c := range cols {
		crcs, err := s.cfg.DB.ColumnChunkCRCs(c.Table, c.Column, syncChunkRows)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		for chunk, crc := range crcs {
			bloom.Add(cluster.ChunkEntryHash(c.Table, c.Column, chunk, crc))
		}
	}
	writeJSON(w, http.StatusOK, &cluster.DigestSummary{
		Version: cluster.SyncVersion, ChunkRows: syncChunkRows,
		Columns: cols, BloomK: bloom.K(), Bloom: bloom.Encode(),
	})
}

// handleSyncChunk serves GET /sync/chunk?table=&column=&chunk_rows=&
// chunk=: one chunk's raw code words with a transport CRC.
func (s *Server) handleSyncChunk(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	table, column := q.Get("table"), q.Get("column")
	chunkRows, err := strconv.Atoi(q.Get("chunk_rows"))
	if err != nil || chunkRows <= 0 {
		writeError(w, http.StatusBadRequest, "bad chunk_rows %q", q.Get("chunk_rows"))
		return
	}
	chunk, err := strconv.Atoi(q.Get("chunk"))
	if err != nil || chunk < 0 {
		writeError(w, http.StatusBadRequest, "bad chunk %q", q.Get("chunk"))
		return
	}
	words, err := s.cfg.DB.ChunkWords(table, column, chunkRows, chunk)
	if err != nil {
		writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, &cluster.ChunkPayload{
		Version: cluster.SyncVersion, Table: table, Column: column,
		ChunkRows: chunkRows, Chunk: chunk,
		Words: words, CRC: cluster.WordsCRC(words),
	})
}

// handleSyncFromPeer serves POST /sync/from-peer {"peer": url}: pull
// this replica's hardened columns level with the peer.
func (s *Server) handleSyncFromPeer(w http.ResponseWriter, r *http.Request) {
	if !s.enter() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	defer s.wg.Done()
	var req cluster.SyncFromPeerRequest
	if err := decodeRequest(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	if req.Peer == "" {
		writeError(w, http.StatusBadRequest, "peer is required")
		return
	}
	report, err := s.syncFromPeer(r.Context(), req.Peer)
	if err != nil {
		s.metrics.syncFailed.Add(1)
		writeError(w, http.StatusBadGateway, "sync from %s: %v", req.Peer, err)
		return
	}
	s.metrics.syncRuns.Add(1)
	s.metrics.syncHealedChunks.Add(uint64(report.TotalHealed()))
	writeJSON(w, http.StatusOK, report)
}

// syncFromPeer runs one anti-entropy pass against the peer: bloom
// compare first, exact CRC lists for suspect columns, chunk fetch +
// AN-verified heal for diverged chunks, quarantine lift once a column
// checks fully clean.
func (s *Server) syncFromPeer(ctx context.Context, peer string) (*cluster.SyncReport, error) {
	client := cluster.NewSyncClient(peer, nil)
	sum, bloom, err := client.Digests(ctx)
	if err != nil {
		return nil, err
	}
	peerCols := make(map[string]cluster.ColumnDigest, len(sum.Columns))
	for _, c := range sum.Columns {
		peerCols[c.Table+"."+c.Column] = c
	}
	report := &cluster.SyncReport{Version: cluster.SyncVersion, Peer: peer}
	for _, local := range s.hardenedColumns() {
		cr := cluster.ColumnSyncReport{Table: local.Table, Column: local.Column}
		pd, ok := peerCols[local.Table+"."+local.Column]
		switch {
		case !ok:
			cr.Skipped = "peer does not hold this column"
		case pd.CodeA != local.CodeA || pd.CodeBits != local.CodeBits || pd.Rows != local.Rows:
			cr.Skipped = "peer column schema differs (rows or code parameters)"
		}
		if cr.Skipped != "" {
			report.Columns = append(report.Columns, cr)
			continue
		}
		localCRCs, err := s.cfg.DB.ColumnChunkCRCs(local.Table, local.Column, sum.ChunkRows)
		if err != nil {
			return nil, err
		}
		cr.ChunksChecked = len(localCRCs)
		// The bloom filter clears definitely-identical columns cheaply.
		// Suspicion - quarantine, or any locally invalid code word -
		// overrides a bloom hit: false positives must not mask a chunk
		// that genuinely needs healing.
		suspect := s.cfg.DB.IsQuarantined(local.Column)
		if !suspect {
			hc, herr := s.cfg.DB.Hardened(local.Table).Column(local.Column)
			if herr == nil {
				if bad, cerr := hc.CheckAll(); cerr == nil && len(bad) > 0 {
					suspect = true
				}
			}
		}
		if !suspect {
			miss := false
			for chunk, crc := range localCRCs {
				if !bloom.Has(cluster.ChunkEntryHash(local.Table, local.Column, chunk, crc)) {
					miss = true
					break
				}
			}
			if !miss {
				report.Columns = append(report.Columns, cr)
				continue
			}
		}
		exact, err := client.ColumnCRCs(ctx, local.Table, local.Column)
		if err != nil {
			return nil, err
		}
		if exact.ChunkRows != sum.ChunkRows || len(exact.CRCs) != len(localCRCs) {
			cr.Skipped = "peer CRC list does not match local chunking"
			report.Columns = append(report.Columns, cr)
			continue
		}
		for chunk := range localCRCs {
			if localCRCs[chunk] == exact.CRCs[chunk] {
				continue
			}
			words, err := client.FetchChunk(ctx, local.Table, local.Column, sum.ChunkRows, chunk)
			if err != nil {
				return nil, err
			}
			s.metrics.syncChunksFetched.Add(1)
			s.metrics.syncBytes.Add(uint64(len(words) * 8))
			changed, err := s.cfg.DB.HealChunk(local.Table, local.Column, sum.ChunkRows, chunk, words)
			if err != nil {
				// An AN-invalid peer chunk: refuse it and leave local data
				// untouched rather than spreading corruption.
				cr.Skipped = err.Error()
				break
			}
			cr.ChunksHealed++
			cr.WordsChanged += changed
		}
		if cr.Skipped == "" && s.cfg.DB.IsQuarantined(local.Column) {
			if hc, herr := s.cfg.DB.Hardened(local.Table).Column(local.Column); herr == nil {
				if bad, cerr := hc.CheckAll(); cerr == nil && len(bad) == 0 {
					s.cfg.DB.ClearQuarantine(local.Column)
					cr.Cleared = true
				}
			}
		}
		report.Columns = append(report.Columns, cr)
	}
	return report, nil
}
