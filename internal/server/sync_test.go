package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ahead/internal/cluster"
	"ahead/internal/exec"
	"ahead/internal/faults"
	"ahead/internal/ssb"
	"ahead/internal/storage"
)

// tinyDBRows is tinyDB with a custom row count, for schema-mismatch
// sync cases where the peer's column shape must differ.
func tinyDBRows(t *testing.T, rows uint64) *exec.DB {
	t.Helper()
	tb := storage.NewTable("t")
	v, err := storage.NewColumn("v", storage.TinyInt)
	if err != nil {
		t.Fatal(err)
	}
	w, err := storage.NewColumn("w", storage.Int)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < rows; i++ {
		v.Append(i % 50)
		w.Append(i * 3)
	}
	for _, c := range []*storage.Column{v, w} {
		if err := tb.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	db, err := exec.NewDB([]*storage.Table{tb}, storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func syncTestServer(t *testing.T, db *exec.DB) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(Config{DB: db})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, data)
		}
	}
	return resp.StatusCode
}

func TestSyncDigestsEndpoints(t *testing.T) {
	db := tinyDB(t)
	_, ts := syncTestServer(t, db)

	var sum cluster.DigestSummary
	if code := getJSON(t, ts.URL+"/sync/digests", &sum); code != http.StatusOK {
		t.Fatalf("summary status %d", code)
	}
	if sum.Version != cluster.SyncVersion || len(sum.Columns) != 2 {
		t.Fatalf("summary: %+v", sum)
	}
	bloom, err := cluster.DecodeBloom(sum.Bloom, sum.BloomK)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sum.Columns {
		crcs, err := db.ColumnChunkCRCs(c.Table, c.Column, sum.ChunkRows)
		if err != nil {
			t.Fatal(err)
		}
		if len(crcs) != c.Chunks {
			t.Fatalf("%s.%s: %d chunks in digest, %d locally", c.Table, c.Column, c.Chunks, len(crcs))
		}
		for chunk, crc := range crcs {
			if !bloom.Has(cluster.ChunkEntryHash(c.Table, c.Column, chunk, crc)) {
				t.Fatalf("bloom misses %s.%s chunk %d", c.Table, c.Column, chunk)
			}
		}
	}

	var exact cluster.ChunkCRCList
	if code := getJSON(t, ts.URL+"/sync/digests?table=t&column=w", &exact); code != http.StatusOK {
		t.Fatalf("exact status %d", code)
	}
	want, _ := db.ColumnChunkCRCs("t", "w", exact.ChunkRows)
	if len(exact.CRCs) != len(want) || exact.CRCs[0] != want[0] {
		t.Fatalf("exact CRCs %v, want %v", exact.CRCs, want)
	}

	var dummy json.RawMessage
	if code := getJSON(t, ts.URL+"/sync/digests?table=t", &dummy); code != http.StatusBadRequest {
		t.Fatalf("half-specified column filter must 400, got %d", code)
	}
	if code := getJSON(t, ts.URL+"/sync/digests?table=t&column=missing", &dummy); code != http.StatusNotFound {
		t.Fatalf("unknown column must 404, got %d", code)
	}
}

func TestSyncChunkEndpoint(t *testing.T) {
	db := tinyDB(t)
	_, ts := syncTestServer(t, db)

	var payload cluster.ChunkPayload
	if code := getJSON(t, ts.URL+"/sync/chunk?table=t&column=w&chunk_rows=65536&chunk=0", &payload); code != http.StatusOK {
		t.Fatalf("chunk status %d", code)
	}
	if len(payload.Words) != 256 || payload.CRC != cluster.WordsCRC(payload.Words) {
		t.Fatalf("payload: %d words, crc %d", len(payload.Words), payload.CRC)
	}
	var dummy json.RawMessage
	if code := getJSON(t, ts.URL+"/sync/chunk?table=t&column=w&chunk_rows=0&chunk=0", &dummy); code != http.StatusBadRequest {
		t.Fatalf("zero granularity must 400, got %d", code)
	}
	if code := getJSON(t, ts.URL+"/sync/chunk?table=t&column=w&chunk_rows=65536&chunk=7", &dummy); code != http.StatusNotFound {
		t.Fatalf("out-of-range chunk must 404, got %d", code)
	}
}

func postSync(t *testing.T, url, peer string) (int, cluster.SyncReport, string) {
	t.Helper()
	body, _ := json.Marshal(cluster.SyncFromPeerRequest{Peer: peer})
	resp, err := http.Post(url+"/sync/from-peer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var report cluster.SyncReport
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(data, &report); err != nil {
			t.Fatalf("decode sync report: %v\n%s", err, data)
		}
	}
	return resp.StatusCode, report, string(data)
}

// TestSyncFromPeerHealsCorruptReplica is the PR's acceptance path: a
// replica whose plain repair copy is gone carries a corrupted,
// quarantined hardened column; one POST /sync/from-peer against a
// healthy peer must heal it chunk-by-chunk via the digest diff, lift
// the quarantine, and make query results identical to the peer's.
func TestSyncFromPeerHealsCorruptReplica(t *testing.T) {
	dbPeer, dbVictim := tinyDB(t), tinyDB(t)
	_, tsPeer := syncTestServer(t, dbPeer)
	_, tsVictim := syncTestServer(t, dbVictim)

	query := QueryRequest{
		AdHoc: &ssb.AdHocSpec{
			Table: "t", Agg: "sum", AggCol: "w",
			Preds:   []ssb.AdHocPred{{Col: "v", Lo: 10, Hi: 19}},
			GroupBy: []string{"v"},
		},
		Mode: "continuous",
	}
	resp, refData := postQuery(t, tsPeer.URL, query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("peer reference query: %d\n%s", resp.StatusCode, refData)
	}
	ref := decodeResponse(t, refData)

	// The victim loses its plain repair copy and takes in-guarantee hits
	// in the hardened column; a prior recovery escalation quarantined it.
	dbVictim.DropPlainRepair()
	w := dbVictim.Hardened("t").MustColumn("w")
	inj := faults.NewInjector(99)
	for _, pos := range []int{3, 77, 200} {
		if _, err := inj.FlipAt(w, pos, 2); err != nil {
			t.Fatal(err)
		}
	}
	dbVictim.QuarantineColumn("w")

	code, report, raw := postSync(t, tsVictim.URL, tsPeer.URL)
	if code != http.StatusOK {
		t.Fatalf("sync status %d: %s", code, raw)
	}
	if report.TotalHealed() == 0 {
		t.Fatalf("sync healed nothing: %s", raw)
	}
	var wReport *cluster.ColumnSyncReport
	for i := range report.Columns {
		if report.Columns[i].Column == "w" {
			wReport = &report.Columns[i]
		}
	}
	if wReport == nil || wReport.Skipped != "" || wReport.ChunksHealed == 0 || wReport.WordsChanged != 3 {
		t.Fatalf("w column report: %+v", wReport)
	}
	if !wReport.Cleared || dbVictim.IsQuarantined("w") {
		t.Fatal("quarantine must be lifted once the column checks clean")
	}
	if bad, err := w.CheckAll(); err != nil || len(bad) != 0 {
		t.Fatalf("column not clean after sync: %v, %v", bad, err)
	}

	// The healed replica answers exactly like the peer, with no
	// detections - result rows, keys, aggregates all identical.
	resp, gotData := postQuery(t, tsVictim.URL, query)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healed replica query: %d\n%s", resp.StatusCode, gotData)
	}
	got := decodeResponse(t, gotData)
	if got.Rows != ref.Rows || len(got.Detected) != 0 {
		t.Fatalf("healed replica: rows %d (want %d), detected %v", got.Rows, ref.Rows, got.Detected)
	}
	for r := range ref.Keys {
		for c := range ref.Keys[r] {
			if got.Keys[r][c] != ref.Keys[r][c] {
				t.Fatalf("row %d key %d: %d vs %d", r, c, got.Keys[r][c], ref.Keys[r][c])
			}
		}
	}
	for r := range ref.Aggs {
		if got.Aggs[r] != ref.Aggs[r] {
			t.Fatalf("row %d agg: %d vs %d", r, got.Aggs[r], ref.Aggs[r])
		}
	}

	// The pass is visible in the metrics.
	mresp, err := http.Get(tsVictim.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(metrics), "ahead_sync_runs_total 1") {
		t.Fatal("sync run not counted in /metrics")
	}
	if !strings.Contains(string(metrics), "ahead_sync_healed_chunks_total 1") {
		t.Fatal("healed chunks not counted in /metrics")
	}
}

// TestSyncFromPeerCleanIsNoop: identical replicas agree via the bloom
// summary alone - nothing fetched, nothing healed, nothing skipped.
func TestSyncFromPeerCleanIsNoop(t *testing.T) {
	dbPeer, dbVictim := tinyDB(t), tinyDB(t)
	_, tsPeer := syncTestServer(t, dbPeer)
	_, tsVictim := syncTestServer(t, dbVictim)

	code, report, raw := postSync(t, tsVictim.URL, tsPeer.URL)
	if code != http.StatusOK {
		t.Fatalf("sync status %d: %s", code, raw)
	}
	if report.TotalHealed() != 0 || len(report.Columns) != 2 {
		t.Fatalf("clean sync report: %s", raw)
	}
	for _, cr := range report.Columns {
		if cr.Skipped != "" || cr.ChunksHealed != 0 {
			t.Fatalf("clean column report: %+v", cr)
		}
	}
}

// TestSyncFromPeerValidation: bad peers and bad requests fail loudly.
func TestSyncFromPeerValidation(t *testing.T) {
	db := tinyDB(t)
	_, ts := syncTestServer(t, db)

	if code, _, raw := postSync(t, ts.URL, ""); code != http.StatusBadRequest {
		t.Fatalf("empty peer must 400, got %d: %s", code, raw)
	}
	if code, _, raw := postSync(t, ts.URL, "http://127.0.0.1:1"); code != http.StatusBadGateway {
		t.Fatalf("unreachable peer must 502, got %d: %s", code, raw)
	}
}

// TestSyncFromPeerSchemaMismatch: a peer with a different row count is
// never authoritative - its columns are skipped, local data untouched.
func TestSyncFromPeerSchemaMismatch(t *testing.T) {
	dbVictim := tinyDB(t)
	dbPeer := tinyDBRows(t, 128)
	_, tsPeer := syncTestServer(t, dbPeer)
	_, tsVictim := syncTestServer(t, dbVictim)

	code, report, raw := postSync(t, tsVictim.URL, tsPeer.URL)
	if code != http.StatusOK {
		t.Fatalf("sync status %d: %s", code, raw)
	}
	for _, cr := range report.Columns {
		if cr.Skipped == "" || cr.ChunksHealed != 0 {
			t.Fatalf("mismatched column must be skipped: %+v", cr)
		}
	}
}
