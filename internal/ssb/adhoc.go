package ssb

import (
	"fmt"

	"ahead/internal/exec"
	"ahead/internal/ops"
)

// LookupQuery returns the prepared plan for one of the 13 SSB flights.
func LookupQuery(name string) (exec.QueryFunc, bool) {
	fn, ok := Queries[name]
	return fn, ok
}

// Ad-hoc requests: the serving layer accepts a small declarative
// scan/filter/group form next to the prepared flights. A spec compiles
// against a DB into an exec.QueryFunc, so one compiled request runs
// under every execution mode like the hand-written plans. Compilation
// validates the whole spec against the schema up front - the handler's
// guarantee that a malformed request is a 400, never a panic or a
// silently degraded run.

// AdHocLimits bound a spec: conjunctive predicates and group-by width
// are capped so a hostile request cannot explode the plan.
const (
	MaxAdHocPreds   = 8
	MaxAdHocGroupBy = 4
)

// AdHocPred is one inclusive range predicate; equality is lo == hi.
// An inverted range (lo > hi) selects nothing, matching ops.Filter.
type AdHocPred struct {
	Col string `json:"col"`
	Lo  uint64 `json:"lo"`
	Hi  uint64 `json:"hi"`
}

// AdHocSpec is a single-table scan/filter/group request.
//
//   - Agg "count": row count (per group, or one scalar).
//   - Agg "sum": Σ agg_col.
//   - Agg "sumproduct": Σ agg_col*agg_col2, scalar only.
//
// All referenced columns must belong to Table.
type AdHocSpec struct {
	Table   string      `json:"table"`
	Preds   []AdHocPred `json:"preds,omitempty"`
	GroupBy []string    `json:"group_by,omitempty"`
	Agg     string      `json:"agg"`
	AggCol  string      `json:"agg_col,omitempty"`
	AggCol2 string      `json:"agg_col2,omitempty"`
}

// CompileAdHoc validates the spec against the schema and returns the
// plan. Every schema error surfaces here, before anything runs.
func CompileAdHoc(db *exec.DB, s AdHocSpec) (exec.QueryFunc, error) {
	tab := db.Plain(s.Table)
	if tab == nil {
		return nil, fmt.Errorf("ssb: unknown table %q", s.Table)
	}
	if len(s.Preds) > MaxAdHocPreds {
		return nil, fmt.Errorf("ssb: %d predicates (max %d)", len(s.Preds), MaxAdHocPreds)
	}
	if len(s.GroupBy) > MaxAdHocGroupBy {
		return nil, fmt.Errorf("ssb: %d group-by columns (max %d)", len(s.GroupBy), MaxAdHocGroupBy)
	}
	checkCol := func(name string) error {
		if name == "" {
			return fmt.Errorf("ssb: empty column name")
		}
		if _, err := tab.Column(name); err != nil {
			return fmt.Errorf("ssb: table %q has no column %q", s.Table, name)
		}
		return nil
	}
	for _, p := range s.Preds {
		if err := checkCol(p.Col); err != nil {
			return nil, err
		}
	}
	for _, g := range s.GroupBy {
		if err := checkCol(g); err != nil {
			return nil, err
		}
	}
	switch s.Agg {
	case "count":
		if s.AggCol != "" || s.AggCol2 != "" {
			return nil, fmt.Errorf("ssb: count takes no aggregate column")
		}
	case "sum":
		if err := checkCol(s.AggCol); err != nil {
			return nil, err
		}
		if s.AggCol2 != "" {
			return nil, fmt.Errorf("ssb: sum takes one aggregate column")
		}
	case "sumproduct":
		if err := checkCol(s.AggCol); err != nil {
			return nil, err
		}
		if err := checkCol(s.AggCol2); err != nil {
			return nil, err
		}
		if len(s.GroupBy) > 0 {
			return nil, fmt.Errorf("ssb: sumproduct is scalar only")
		}
	default:
		return nil, fmt.Errorf("ssb: unknown aggregate %q (count, sum, sumproduct)", s.Agg)
	}
	// The unfiltered scan needs some column to enumerate rows over.
	cols := tab.Columns()
	if len(cols) == 0 {
		return nil, fmt.Errorf("ssb: table %q has no columns", s.Table)
	}
	anyCol := cols[0].Name()
	spec := s // plans outlive the request decode; keep a copy
	return func(q *exec.Query) (*ops.Result, error) {
		return runAdHoc(q, spec, anyCol)
	}, nil
}

// runAdHoc executes a compiled spec under the query's mode.
func runAdHoc(q *exec.Query, s AdHocSpec, anyCol string) (*ops.Result, error) {
	var sel *ops.Sel
	if len(s.Preds) == 0 {
		var err error
		if sel, err = allRows(q, s.Table, anyCol); err != nil {
			return nil, err
		}
	} else {
		ps := make([]pred, len(s.Preds))
		for i, p := range s.Preds {
			ps[i] = pred{col: p.Col, lo: p.Lo, hi: p.Hi}
		}
		var err error
		if sel, err = filterTable(q, s.Table, ps); err != nil {
			return nil, err
		}
	}

	if len(s.GroupBy) == 0 {
		switch s.Agg {
		case "count":
			return q.FinishScalar(&ops.Vec{Name: "count", Vals: []uint64{uint64(sel.Len())}})
		case "sum":
			vec, err := gatherAdHoc(q, s.Table, s.AggCol, sel)
			if err != nil {
				return nil, err
			}
			sum, err := ops.SumTotal(q.PreAggregate(vec), q.Opts())
			if err != nil {
				return nil, err
			}
			return q.FinishScalar(sum)
		default: // sumproduct, by validation
			a, err := gatherAdHoc(q, s.Table, s.AggCol, sel)
			if err != nil {
				return nil, err
			}
			b, err := gatherAdHoc(q, s.Table, s.AggCol2, sel)
			if err != nil {
				return nil, err
			}
			sum, err := ops.SumProduct(q.PreAggregate(a), q.PreAggregate(b), q.Opts())
			if err != nil {
				return nil, err
			}
			return q.FinishScalar(sum)
		}
	}

	keys := make([]*ops.Vec, len(s.GroupBy))
	for i, g := range s.GroupBy {
		vec, err := gatherAdHoc(q, s.Table, g, sel)
		if err != nil {
			return nil, err
		}
		keys[i] = q.PreAggregate(vec)
	}
	gids, groups, err := ops.GroupBy(keys, q.Opts())
	if err != nil {
		return nil, err
	}
	var sums *ops.Vec
	if s.Agg == "count" {
		if sums, err = ops.CountGrouped(gids, len(groups), nil); err != nil {
			return nil, err
		}
	} else {
		meas, err := gatherAdHoc(q, s.Table, s.AggCol, sel)
		if err != nil {
			return nil, err
		}
		if sums, err = ops.SumGrouped(q.PreAggregate(meas), gids, len(groups), q.Opts()); err != nil {
			return nil, err
		}
	}
	return q.Finish(groups, sums)
}

// gatherAdHoc fetches one column of the spec's table at the selection,
// applying the mode's reencoding like the hand-written plans do.
func gatherAdHoc(q *exec.Query, table, col string, sel *ops.Sel) (*ops.Vec, error) {
	c, err := q.Col(table, col)
	if err != nil {
		return nil, err
	}
	vec, err := ops.Gather(c, sel, q.Opts())
	if err != nil {
		return nil, err
	}
	return q.Reencode(vec)
}
