package ssb

import (
	"strings"
	"testing"

	"ahead/internal/exec"
	"ahead/internal/ops"
)

func TestAdHocValidation(t *testing.T) {
	suite, _, err := NewSuite(0.002, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := []AdHocSpec{
		{Table: "nope", Agg: "count"},
		{Table: "lineorder", Agg: "median"},
		{Table: "lineorder", Agg: "sum"}, // missing agg_col
		{Table: "lineorder", Agg: "sum", AggCol: "no_such_col"},
		{Table: "lineorder", Agg: "count", Preds: []AdHocPred{{Col: "bogus"}}},
		{Table: "lineorder", Agg: "count", GroupBy: []string{"bogus"}},
		{Table: "lineorder", Agg: "sumproduct", AggCol: "lo_extendedprice", AggCol2: "lo_discount", GroupBy: []string{"lo_discount"}},
		{Table: "lineorder", Agg: "count", GroupBy: []string{"lo_discount", "lo_quantity", "lo_tax", "lo_shipmode", "lo_orderpriority"}},
		{Table: "lineorder", Agg: "count", Preds: make([]AdHocPred, MaxAdHocPreds+1)},
	}
	for i, s := range bad {
		if _, err := CompileAdHoc(suite.DB, s); err == nil {
			t.Errorf("spec %d compiled, want error", i)
		}
	}
}

// TestAdHocAgainstPreparedQ11: the ad-hoc form of Q1.1's fact-local part
// (filter lineorder, sum-product price*discount without the date
// semijoin) must agree across all modes, like the prepared flights do.
func TestAdHocModesAgree(t *testing.T) {
	suite, _, err := NewSuite(0.002, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	specs := []AdHocSpec{
		{Table: "lineorder", Agg: "count",
			Preds: []AdHocPred{{Col: "lo_discount", Lo: 1, Hi: 3}}},
		{Table: "lineorder", Agg: "sumproduct", AggCol: "lo_extendedprice", AggCol2: "lo_discount",
			Preds: []AdHocPred{{Col: "lo_discount", Lo: 1, Hi: 3}, {Col: "lo_quantity", Lo: 0, Hi: 24}}},
		{Table: "lineorder", Agg: "sum", AggCol: "lo_revenue",
			Preds:   []AdHocPred{{Col: "lo_quantity", Lo: 10, Hi: 30}},
			GroupBy: []string{"lo_discount"}},
		{Table: "supplier", Agg: "count", GroupBy: []string{"s_region"}},
	}
	for si, spec := range specs {
		plan, err := CompileAdHoc(suite.DB, spec)
		if err != nil {
			t.Fatalf("spec %d: %v", si, err)
		}
		ref, _, err := exec.Run(suite.DB, exec.Unprotected, ops.Scalar, plan)
		if err != nil {
			t.Fatalf("spec %d unprotected: %v", si, err)
		}
		for _, m := range exec.Modes {
			res, log, err := exec.Run(suite.DB, m, ops.Scalar, plan)
			if err != nil {
				t.Fatalf("spec %d under %v: %v", si, m, err)
			}
			if log.Count() != 0 {
				t.Fatalf("spec %d under %v: spurious log entries", si, m)
			}
			if !res.Equal(ref) {
				t.Fatalf("spec %d under %v: result diverges from unprotected", si, m)
			}
		}
	}
}

func TestLookupQuery(t *testing.T) {
	for _, name := range QueryNames {
		if _, ok := LookupQuery(name); !ok {
			t.Errorf("prepared query %q missing from registry", name)
		}
	}
	if _, ok := LookupQuery("Q9.9"); ok {
		t.Error("unknown query must not resolve")
	}
	if !strings.HasPrefix(QueryNames[0], "Q1") {
		t.Error("query names out of order")
	}
}
