package ssb

import (
	"fmt"
	"testing"

	"ahead/internal/exec"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// TestAdHocWideDictGroupBy is the regression test for the packed
// group-key overflow: a dictionary column with more than 2^16 distinct
// values hardens to a key component wider than 16 bits, which the
// group-by key path used to reject. Every hardened mode must now agree
// with the unprotected reference, serial and pooled.
func TestAdHocWideDictGroupBy(t *testing.T) {
	const distinct = 1<<16 + 1 // dict codes 0..65536 need 17 bits
	const rows = 3 * distinct / 2
	vals := make([]string, rows)
	for i := range vals {
		vals[i] = fmt.Sprintf("cust-%06d", i%distinct)
	}
	cust := storage.NewStrColumn("wd_customer", vals)
	if bits := cust.Dict().Bits(); bits <= 16 {
		t.Fatalf("fixture dictionary only needs %d bits; the regression needs > 16", bits)
	}
	amount, err := storage.NewColumn("wd_amount", storage.Int)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		amount.Append(uint64(i % 1000))
	}
	tab := storage.NewTable("widedict")
	if err := tab.AddColumn(cust); err != nil {
		t.Fatal(err)
	}
	if err := tab.AddColumn(amount); err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB([]*storage.Table{tab}, storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	if hc, err := db.Hardened("widedict").Column("wd_customer"); err != nil {
		t.Fatal(err)
	} else if hc.Code().DataBits() <= 16 {
		t.Fatalf("hardened key carries %d data bits; the regression needs > 16", hc.Code().DataBits())
	}

	spec := AdHocSpec{
		Table:   "widedict",
		Agg:     "sum",
		AggCol:  "wd_amount",
		Preds:   []AdHocPred{{Col: "wd_amount", Lo: 100, Hi: 900}},
		GroupBy: []string{"wd_customer"},
	}
	plan, err := CompileAdHoc(db, spec)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := exec.Run(db, exec.Unprotected, ops.Scalar, plan)
	if err != nil {
		t.Fatal(err)
	}
	// The reference must actually exercise key codes beyond 16 bits.
	var wide bool
	for _, k := range ref.Keys {
		if k[0] >= 1<<16 {
			wide = true
			break
		}
	}
	if !wide {
		t.Fatalf("no group key beyond 16 bits among %d groups", len(ref.Keys))
	}
	pool := exec.NewPool(4)
	defer pool.Close()
	for _, m := range exec.Modes {
		for _, p := range []*exec.Pool{nil, pool} {
			res, log, err := exec.Run(db, m, ops.Scalar, plan, exec.WithPool(p))
			if err != nil {
				t.Fatalf("%v (pool=%v): %v", m, p != nil, err)
			}
			if log.Count() != 0 {
				t.Fatalf("%v (pool=%v): spurious log entries", m, p != nil)
			}
			if !res.Equal(ref) {
				t.Fatalf("%v (pool=%v): result diverges from unprotected", m, p != nil)
			}
		}
	}
}
