package ssb

import (
	"fmt"
	"testing"

	"ahead/internal/exec"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// diffModes is the differential matrix of ISSUE: the four hardened
// detection variants, each crossed with serial/pooled execution and
// fused/materializing operator chains. (Under ContinuousReencoding the
// fusion flag is a no-op - the mode never fuses - which makes it the
// matrix's built-in control row.)
var diffModes = []exec.Mode{exec.EarlyOnetime, exec.LateOnetime, exec.Continuous, exec.ContinuousReencoding}

// firstDivergence walks two results in row order and describes the first
// cell where they disagree, so a differential failure points at the
// exact group and column instead of dumping both result sets.
func firstDivergence(want, got *ops.Result) string {
	if want.Rows() != got.Rows() {
		return fmt.Sprintf("row count %d vs %d", want.Rows(), got.Rows())
	}
	for r := 0; r < want.Rows(); r++ {
		if len(want.Keys[r]) != len(got.Keys[r]) {
			return fmt.Sprintf("row %d: key width %d vs %d", r, len(want.Keys[r]), len(got.Keys[r]))
		}
		for c := range want.Keys[r] {
			if want.Keys[r][c] != got.Keys[r][c] {
				return fmt.Sprintf("row %d key[%d]: %d vs %d", r, c, want.Keys[r][c], got.Keys[r][c])
			}
		}
		if want.Aggs[r] != got.Aggs[r] {
			return fmt.Sprintf("row %d agg: %d vs %d", r, want.Aggs[r], got.Aggs[r])
		}
	}
	return "results identical"
}

// TestDifferentialCrossMode runs every SSB query under every hardened
// mode x {serial, pooled} x {fused, materializing} and requires each
// configuration to reproduce the unprotected reference result exactly,
// with empty and (serial vs pooled) byte-identical error logs.
func TestDifferentialCrossMode(t *testing.T) {
	data, err := Generate(0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.NewPool(4)
	defer pool.Close()

	for _, name := range QueryNames {
		plan := Queries[name]
		ref, _, err := exec.Run(db, exec.Unprotected, ops.Blocked, plan)
		if err != nil {
			t.Fatalf("%s unprotected: %v", name, err)
		}
		for _, mode := range diffModes {
			for _, fused := range []bool{true, false} {
				var logs [2]*ops.ErrorLog
				for i, pooled := range []bool{false, true} {
					opts := []exec.RunOption{exec.WithFusion(fused)}
					if pooled {
						opts = append(opts, exec.WithPool(pool))
					}
					got, log, err := exec.Run(db, mode, ops.Blocked, plan, opts...)
					if err != nil {
						t.Fatalf("%s %v fused=%v pooled=%v: %v", name, mode, fused, pooled, err)
					}
					if !ref.Equal(got) {
						t.Fatalf("%s %v fused=%v pooled=%v diverges: %s",
							name, mode, fused, pooled, firstDivergence(ref, got))
					}
					if log.Count() != 0 {
						t.Fatalf("%s %v fused=%v pooled=%v: %d errors logged on clean data",
							name, mode, fused, pooled, log.Count())
					}
					logs[i] = log
				}
				if !logs[0].Equal(logs[1]) {
					t.Fatalf("%s %v fused=%v: serial and pooled logs differ", name, mode, fused)
				}
			}
		}
	}
}

// TestDifferentialFaultLogs injects revenue corruption and requires,
// under Continuous detection, that (a) fused and materializing plans
// drop the same rows and produce the same result, (b) serial and pooled
// logs are byte-identical within each plan shape, and (c) all four
// configurations report the same set of corrupted lo_revenue positions.
func TestDifferentialFaultLogs(t *testing.T) {
	data, err := Generate(0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	rev := db.Hardened("lineorder").MustColumn("lo_revenue")
	for i := 50; i < rev.Len(); i += 97 {
		rev.Corrupt(i, 1<<13)
	}
	pool := exec.NewPool(4)
	defer pool.Close()

	for _, name := range []string{"Q3.1", "Q4.1"} {
		plan := Queries[name]
		var results [2]*ops.Result
		var positions [2][]uint64
		for fi, fused := range []bool{true, false} {
			var logs [2]*ops.ErrorLog
			for i, pooled := range []bool{false, true} {
				opts := []exec.RunOption{exec.WithFusion(fused)}
				if pooled {
					opts = append(opts, exec.WithPool(pool))
				}
				got, log, err := exec.Run(db, exec.Continuous, ops.Blocked, plan, opts...)
				if err != nil {
					t.Fatalf("%s fused=%v pooled=%v: %v", name, fused, pooled, err)
				}
				logs[i] = log
				if results[fi] == nil {
					results[fi] = got
				} else if !results[fi].Equal(got) {
					t.Fatalf("%s fused=%v: pooled result diverges: %s",
						name, fused, firstDivergence(results[fi], got))
				}
			}
			if !logs[0].Equal(logs[1]) {
				t.Fatalf("%s fused=%v: serial and pooled fault logs differ (%d vs %d entries)",
					name, fused, logs[0].Count(), logs[1].Count())
			}
			pos, err := logs[0].Positions("lo_revenue")
			if err != nil {
				t.Fatalf("%s fused=%v: %v", name, fused, err)
			}
			if len(pos) == 0 {
				t.Fatalf("%s fused=%v: corruption went undetected; test is vacuous", name, fused)
			}
			positions[fi] = pos
		}
		if !results[0].Equal(results[1]) {
			t.Fatalf("%s: fused and materializing results diverge under faults: %s",
				name, firstDivergence(results[1], results[0]))
		}
		if fmt.Sprint(positions[0]) != fmt.Sprint(positions[1]) {
			t.Fatalf("%s: fused logged lo_revenue positions %v, materializing %v",
				name, positions[0], positions[1])
		}
	}
}
