package ssb

import (
	"sort"
	"testing"

	"ahead/internal/exec"
	"ahead/internal/faults"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// TestEndToEndInjectionDetectionRepair closes the loop the paper's
// Section 9 sketches: inject flips into hardened base data, detect them
// on the fly during query processing, repair from redundancy, and verify
// the workload returns to the fault-free answer.
func TestEndToEndInjectionDetectionRepair(t *testing.T) {
	d, err := Generate(0.005, 11)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(d.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := exec.Run(db, exec.Continuous, ops.Blocked, Q21)
	if err != nil {
		t.Fatal(err)
	}

	// Inject weight-2 flips into the part FK - within every published
	// guarantee, and probed in full by Q2.1.
	fk := db.Hardened("lineorder").MustColumn("lo_partkey")
	inj := faults.NewInjector(5)
	injected, err := inj.FlipRandom(fk, 25, 2)
	if err != nil {
		t.Fatal(err)
	}
	sort.Ints(injected)

	_, log, err := exec.Run(db, exec.Continuous, ops.Blocked, Q21)
	if err != nil {
		t.Fatal(err)
	}
	got, err := log.Positions("lo_partkey")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(injected) {
		t.Fatalf("continuous run found %d of %d injected flips", len(got), len(injected))
	}
	for i, pos := range injected {
		if got[i] != uint64(pos) {
			t.Fatalf("position %d: found %d, injected %d", i, got[i], pos)
		}
	}

	// Early one-time detection finds the same set in its Δ pass.
	_, logE, err := exec.Run(db, exec.EarlyOnetime, ops.Blocked, Q21)
	if err != nil {
		t.Fatal(err)
	}
	gotE, err := logE.Positions("lo_partkey")
	if err != nil {
		t.Fatal(err)
	}
	if len(gotE) != len(injected) {
		t.Fatalf("early Δ found %d of %d", len(gotE), len(injected))
	}

	// Repair from the plain replica and verify the fault-free answer.
	n, err := db.RepairHardened("lineorder", "lo_partkey", log)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(injected) {
		t.Fatalf("repaired %d of %d", n, len(injected))
	}
	res, logAfter, err := exec.Run(db, exec.Continuous, ops.Blocked, Q21)
	if err != nil {
		t.Fatal(err)
	}
	if logAfter.Count() != 0 {
		t.Fatalf("%d residual detections after repair", logAfter.Count())
	}
	if !res.Equal(ref) {
		t.Fatal("repaired run differs from the fault-free answer")
	}
}

// TestInjectionIntoEveryHardenedLineorderColumn runs the full Δ over every
// hardened lineorder column after injection: every guaranteed-weight flip
// must be found no matter the column's width class and code.
func TestInjectionIntoEveryHardenedLineorderColumn(t *testing.T) {
	d, err := Generate(0.002, 3)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := d.Lineorder.Harden(storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.NewInjector(9)
	for _, col := range hard.Columns() {
		code := col.Code()
		if code == nil {
			continue
		}
		// Stay within each code's published guarantee; the 48-bit
		// heap-reference code has none, so use single flips there
		// (detected by any AN code: ±2^i is never a multiple of A).
		weight := 2
		if code.DataBits() > 32 {
			weight = 1
		}
		positions, err := inj.FlipRandom(col, 10, weight)
		if err != nil {
			t.Fatalf("%s: %v", col.Name(), err)
		}
		errs, err := col.CheckAll()
		if err != nil {
			t.Fatal(err)
		}
		if len(errs) != len(positions) {
			t.Fatalf("%s (A=%d,|D|=%d): detected %d of %d weight-%d flips",
				col.Name(), code.A(), code.DataBits(), len(errs), len(positions), weight)
		}
		// Restore for the next column's independence.
		for _, p := range positions {
			plain := d.Lineorder.MustColumn(col.Name())
			col.Set(int(p), plain.Get(p))
		}
	}
}
