// Package ssb implements the Star Schema Benchmark substrate of the
// paper's end-to-end evaluation (Section 6): a deterministic in-process
// data generator with the SSB schema and value distributions, the 13
// manually written query plans, and the measurement harness producing the
// relative-runtime and storage comparisons of Figures 1, 6, 7, 8 and 11.
//
// The generator replaces the external dbgen tool (see DESIGN.md): same
// schema, same dictionaries (TPC-H regions/nations/cities, MFGR
// manufacturer/category/brand hierarchy), same key distributions and
// selectivities, with row counts scaled by the scale factor. Scale factor
// 1 corresponds to 6,000,000 lineorder rows.
package ssb

import (
	"fmt"
	"math/rand"
	"time"

	"ahead/internal/storage"
)

// regions and their nations (TPC-H appendix).
var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationsByRegion = map[string][]string{
	"AFRICA":      {"ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE"},
	"AMERICA":     {"ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES"},
	"ASIA":        {"CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM"},
	"EUROPE":      {"FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM"},
	"MIDDLE EAST": {"EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"},
}

var monthNames = []string{"Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"}

// cityOf formats the SSB city name: the nation truncated/padded to nine
// characters plus a digit, e.g. "UNITED KI1".
func cityOf(nation string, i int) string {
	return fmt.Sprintf("%-9.9s%d", nation, i)
}

// Data bundles the five SSB tables.
type Data struct {
	Lineorder *storage.Table
	Date      *storage.Table
	Customer  *storage.Table
	Supplier  *storage.Table
	Part      *storage.Table
}

// Tables returns all tables for DB construction.
func (d *Data) Tables() []*storage.Table {
	return []*storage.Table{d.Lineorder, d.Date, d.Customer, d.Supplier, d.Part}
}

// Rows summarizes table cardinalities.
func (d *Data) Rows() map[string]int {
	return map[string]int{
		"lineorder": d.Lineorder.Rows(),
		"date":      d.Date.Rows(),
		"customer":  d.Customer.Rows(),
		"supplier":  d.Supplier.Rows(),
		"part":      d.Part.Rows(),
	}
}

// Generate produces the SSB tables at the given scale factor with a
// deterministic seed. sf may be fractional; sf = 1 yields the standard
// 6,000,000 lineorder rows (tests use much smaller factors).
func Generate(sf float64, seed int64) (*Data, error) {
	if sf <= 0 {
		return nil, fmt.Errorf("ssb: scale factor must be positive, got %v", sf)
	}
	rng := rand.New(rand.NewSource(seed))
	d := &Data{}
	var err error
	if d.Date, err = genDate(); err != nil {
		return nil, err
	}
	nCust := scaled(30000, sf)
	nSupp := scaled(2000, sf)
	nPart := scaled(200000, sf) // dbgen grows parts with log2(sf); linear is fine below sf=1
	nLine := scaled(6000000, sf)
	if d.Customer, err = genCustomer(nCust, rng); err != nil {
		return nil, err
	}
	if d.Supplier, err = genSupplier(nSupp, rng); err != nil {
		return nil, err
	}
	if d.Part, err = genPart(nPart, rng); err != nil {
		return nil, err
	}
	if d.Lineorder, err = genLineorder(nLine, d, rng); err != nil {
		return nil, err
	}
	return d, nil
}

func scaled(base int, sf float64) int {
	n := int(float64(base) * sf)
	// Keep dimensions large enough that every region/nation/category
	// appears even at tiny test scale factors.
	if n < 50 {
		n = 50
	}
	return n
}

func newTable(name string, cols ...*storage.Column) (*storage.Table, error) {
	t := storage.NewTable(name)
	for _, c := range cols {
		if err := t.AddColumn(c); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// genDate produces the 7-year calendar (1992-01-01 .. 1998-12-31) of the
// SSB date dimension with the full attribute set of the specification.
func genDate() (*storage.Table, error) {
	datekey, err := storage.NewColumn("d_datekey", storage.Int)
	if err != nil {
		return nil, err
	}
	year, _ := storage.NewColumn("d_year", storage.ShortInt)
	yearmonthnum, _ := storage.NewColumn("d_yearmonthnum", storage.Int)
	daynuminweek, _ := storage.NewColumn("d_daynuminweek", storage.TinyInt)
	daynuminmonth, _ := storage.NewColumn("d_daynuminmonth", storage.TinyInt)
	daynuminyear, _ := storage.NewColumn("d_daynuminyear", storage.ShortInt)
	monthnuminyear, _ := storage.NewColumn("d_monthnuminyear", storage.TinyInt)
	weeknuminyear, _ := storage.NewColumn("d_weeknuminyear", storage.TinyInt)
	lastdayinweekfl, _ := storage.NewColumn("d_lastdayinweekfl", storage.TinyInt)
	lastdayinmonthfl, _ := storage.NewColumn("d_lastdayinmonthfl", storage.TinyInt)
	holidayfl, _ := storage.NewColumn("d_holidayfl", storage.TinyInt)
	weekdayfl, _ := storage.NewColumn("d_weekdayfl", storage.TinyInt)
	var yearmonths, months, dayofweeks, seasons []string

	seasonOf := func(m time.Month) string {
		switch {
		case m == time.December:
			return "Christmas"
		case m >= time.June && m <= time.August:
			return "Summer"
		case m >= time.January && m <= time.February:
			return "Winter"
		default:
			return ""
		}
	}

	start := time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)
	end := time.Date(1999, 1, 1, 0, 0, 0, 0, time.UTC)
	for day := start; day.Before(end); day = day.AddDate(0, 0, 1) {
		y, m, dd := day.Date()
		datekey.Append(uint64(y*10000 + int(m)*100 + dd))
		year.Append(uint64(y))
		yearmonthnum.Append(uint64(y*100 + int(m)))
		daynuminweek.Append(uint64(day.Weekday()) + 1)
		daynuminmonth.Append(uint64(dd))
		daynuminyear.Append(uint64(day.YearDay()))
		monthnuminyear.Append(uint64(m))
		_, week := day.ISOWeek()
		weeknuminyear.Append(uint64(week))
		lastdayinweekfl.Append(boolFlag(day.Weekday() == time.Saturday))
		lastdayinmonthfl.Append(boolFlag(day.AddDate(0, 0, 1).Month() != m))
		holidayfl.Append(boolFlag((m == time.December && dd == 25) || (m == time.January && dd == 1) || (m == time.July && dd == 4)))
		weekdayfl.Append(boolFlag(day.Weekday() != time.Saturday && day.Weekday() != time.Sunday))
		yearmonths = append(yearmonths, fmt.Sprintf("%s%d", monthNames[int(m)-1], y))
		months = append(months, monthNames[int(m)-1])
		dayofweeks = append(dayofweeks, day.Weekday().String())
		seasons = append(seasons, seasonOf(m))
	}
	return newTable("date",
		datekey, year, yearmonthnum, daynuminweek, daynuminmonth,
		daynuminyear, monthnuminyear, weeknuminyear,
		lastdayinweekfl, lastdayinmonthfl, holidayfl, weekdayfl,
		storage.NewStrColumn("d_yearmonth", yearmonths),
		storage.NewStrColumn("d_month", months),
		storage.NewStrColumn("d_dayofweek", dayofweeks),
		storage.NewStrColumn("d_sellingseason", seasons),
	)
}

func boolFlag(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func genCustomer(n int, rng *rand.Rand) (*storage.Table, error) {
	custkey, err := storage.NewColumn("c_custkey", storage.Int)
	if err != nil {
		return nil, err
	}
	var cities, nations, regions, names, addresses, phones []string
	for i := 0; i < n; i++ {
		custkey.Append(uint64(i + 1))
		region := regionNames[rng.Intn(len(regionNames))]
		nation := nationsByRegion[region][rng.Intn(5)]
		cities = append(cities, cityOf(nation, rng.Intn(10)))
		nations = append(nations, nation)
		regions = append(regions, region)
		names = append(names, fmt.Sprintf("Customer#%09d", i+1))
		addresses = append(addresses, randAddress(rng))
		phones = append(phones, randPhone(rng))
	}
	name, err := storage.NewHeapStrColumn("c_name", names)
	if err != nil {
		return nil, err
	}
	address, err := storage.NewHeapStrColumn("c_address", addresses)
	if err != nil {
		return nil, err
	}
	phone, err := storage.NewHeapStrColumn("c_phone", phones)
	if err != nil {
		return nil, err
	}
	return newTable("customer",
		custkey,
		storage.NewStrColumn("c_city", cities),
		storage.NewStrColumn("c_nation", nations),
		storage.NewStrColumn("c_region", regions),
		name, address, phone,
	)
}

// randAddress produces a variable-length address string (10..25 chars).
func randAddress(rng *rand.Rand) string {
	n := 10 + rng.Intn(16)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('A' + rng.Intn(26))
	}
	return string(b)
}

// randPhone produces a TPC-H style phone number.
func randPhone(rng *rand.Rand) string {
	return fmt.Sprintf("%02d-%03d-%03d-%04d", 10+rng.Intn(25), rng.Intn(1000), rng.Intn(1000), rng.Intn(10000))
}

func genSupplier(n int, rng *rand.Rand) (*storage.Table, error) {
	suppkey, err := storage.NewColumn("s_suppkey", storage.Int)
	if err != nil {
		return nil, err
	}
	var cities, nations, regions, names, addresses, phones []string
	for i := 0; i < n; i++ {
		suppkey.Append(uint64(i + 1))
		region := regionNames[rng.Intn(len(regionNames))]
		nation := nationsByRegion[region][rng.Intn(5)]
		cities = append(cities, cityOf(nation, rng.Intn(10)))
		nations = append(nations, nation)
		regions = append(regions, region)
		names = append(names, fmt.Sprintf("Supplier#%09d", i+1))
		addresses = append(addresses, randAddress(rng))
		phones = append(phones, randPhone(rng))
	}
	name, err := storage.NewHeapStrColumn("s_name", names)
	if err != nil {
		return nil, err
	}
	address, err := storage.NewHeapStrColumn("s_address", addresses)
	if err != nil {
		return nil, err
	}
	phone, err := storage.NewHeapStrColumn("s_phone", phones)
	if err != nil {
		return nil, err
	}
	return newTable("supplier",
		suppkey,
		storage.NewStrColumn("s_city", cities),
		storage.NewStrColumn("s_nation", nations),
		storage.NewStrColumn("s_region", regions),
		name, address, phone,
	)
}

func genPart(n int, rng *rand.Rand) (*storage.Table, error) {
	partkey, err := storage.NewColumn("p_partkey", storage.Int)
	if err != nil {
		return nil, err
	}
	size, _ := storage.NewColumn("p_size", storage.TinyInt)
	var mfgrs, categories, brands, names, colors, types, containers []string
	colorList := []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush"}
	typeList := []string{"STANDARD ANODIZED TIN", "SMALL PLATED COPPER", "MEDIUM POLISHED BRASS", "ECONOMY BURNISHED STEEL", "PROMO BRUSHED NICKEL"}
	containerList := []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP CASE", "JUMBO PKG"}
	for i := 0; i < n; i++ {
		partkey.Append(uint64(i + 1))
		size.Append(uint64(rng.Intn(50) + 1))
		m := rng.Intn(5) + 1
		c := rng.Intn(5) + 1
		b := rng.Intn(40) + 1
		mfgr := fmt.Sprintf("MFGR#%d", m)
		category := fmt.Sprintf("MFGR#%d%d", m, c)
		mfgrs = append(mfgrs, mfgr)
		categories = append(categories, category)
		brands = append(brands, fmt.Sprintf("%s%d", category, b))
		color := colorList[rng.Intn(len(colorList))]
		colors = append(colors, color)
		names = append(names, color+" "+colorList[rng.Intn(len(colorList))])
		types = append(types, typeList[rng.Intn(len(typeList))])
		containers = append(containers, containerList[rng.Intn(len(containerList))])
	}
	name, err := storage.NewHeapStrColumn("p_name", names)
	if err != nil {
		return nil, err
	}
	ptype, err := storage.NewHeapStrColumn("p_type", types)
	if err != nil {
		return nil, err
	}
	container, err := storage.NewHeapStrColumn("p_container", containers)
	if err != nil {
		return nil, err
	}
	return newTable("part",
		partkey, size,
		storage.NewStrColumn("p_mfgr", mfgrs),
		storage.NewStrColumn("p_category", categories),
		storage.NewStrColumn("p_brand1", brands),
		storage.NewStrColumn("p_color", colors),
		name, ptype, container,
	)
}

func genLineorder(n int, d *Data, rng *rand.Rand) (*storage.Table, error) {
	orderkey, err := storage.NewColumn("lo_orderkey", storage.Int)
	if err != nil {
		return nil, err
	}
	linenumber, _ := storage.NewColumn("lo_linenumber", storage.TinyInt)
	custkey, _ := storage.NewColumn("lo_custkey", storage.Int)
	partkey, _ := storage.NewColumn("lo_partkey", storage.Int)
	suppkey, _ := storage.NewColumn("lo_suppkey", storage.Int)
	orderdate, _ := storage.NewColumn("lo_orderdate", storage.Int)
	quantity, _ := storage.NewColumn("lo_quantity", storage.TinyInt)
	extendedprice, _ := storage.NewColumn("lo_extendedprice", storage.Int)
	discount, _ := storage.NewColumn("lo_discount", storage.TinyInt)
	revenue, _ := storage.NewColumn("lo_revenue", storage.Int)
	supplycost, _ := storage.NewColumn("lo_supplycost", storage.Int)
	tax, _ := storage.NewColumn("lo_tax", storage.TinyInt)
	ordtotalprice, _ := storage.NewColumn("lo_ordtotalprice", storage.Int)
	commitdate, _ := storage.NewColumn("lo_commitdate", storage.Int)
	shippriority, _ := storage.NewColumn("lo_shippriority", storage.TinyInt)
	var shipmodes, priorities []string
	modes := []string{"AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"}
	prioList := []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"}

	nCust := d.Customer.Rows()
	nSupp := d.Supplier.Rows()
	nPart := d.Part.Rows()
	dateKeys := d.Date.MustColumn("d_datekey")
	nDate := dateKeys.Len()

	order := uint64(1)
	line := 0
	linesInOrder := rng.Intn(7) + 1
	for i := 0; i < n; i++ {
		if line >= linesInOrder {
			order++
			line = 0
			linesInOrder = rng.Intn(7) + 1
		}
		line++
		orderkey.Append(order)
		linenumber.Append(uint64(line))
		custkey.Append(uint64(rng.Intn(nCust) + 1))
		partkey.Append(uint64(rng.Intn(nPart) + 1))
		suppkey.Append(uint64(rng.Intn(nSupp) + 1))
		orderdate.Append(dateKeys.Get(rng.Intn(nDate)))
		qty := uint64(rng.Intn(50) + 1)
		quantity.Append(qty)
		// Price model: part base price 900..104999 (cents scale kept
		// small to fit 32-bit extended prices at any quantity).
		price := qty * uint64(rng.Intn(104100)+900) / 10
		extendedprice.Append(price)
		disc := uint64(rng.Intn(11))
		discount.Append(disc)
		revenue.Append(price * (100 - disc) / 100)
		supplycost.Append(price * 6 / 10)
		tax.Append(uint64(rng.Intn(9)))
		ordtotalprice.Append(price * uint64(linesInOrder))
		commitdate.Append(dateKeys.Get(rng.Intn(nDate)))
		shippriority.Append(0)
		shipmodes = append(shipmodes, modes[rng.Intn(len(modes))])
		priorities = append(priorities, prioList[rng.Intn(len(prioList))])
	}
	shipmode, err := storage.NewHeapStrColumn("lo_shipmode", shipmodes)
	if err != nil {
		return nil, err
	}
	orderpriority, err := storage.NewHeapStrColumn("lo_orderpriority", priorities)
	if err != nil {
		return nil, err
	}
	return newTable("lineorder",
		orderkey, linenumber, custkey, partkey, suppkey, orderdate,
		quantity, extendedprice, discount, revenue, supplycost, tax,
		ordtotalprice, commitdate, shippriority,
		shipmode, orderpriority,
	)
}
