package ssb

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"ahead/internal/exec"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// Measurement is one (query, mode, flavor) timing.
type Measurement struct {
	Query   string
	Mode    exec.Mode
	Flavor  ops.Flavor
	Nanos   float64 // best-of-runs nanoseconds
	Rows    int     // result rows (sanity)
	Workers int     // pool workers the run used (1 = serial)
}

// Suite runs the SSB benchmark: all 13 queries under the selected modes
// and flavors, repeated Runs times, as Section 6.2 does per scale factor.
type Suite struct {
	DB     *exec.DB
	Runs   int
	Warmup int

	pool *exec.Pool
}

// WithParallelism attaches a shared worker pool of n workers (n <= 0
// means GOMAXPROCS) that every subsequent Measure uses; n == 1 removes
// the pool and returns the suite to serial execution. Close releases the
// workers.
func (s *Suite) WithParallelism(n int) *Suite {
	if s.pool != nil {
		s.pool.Close()
		s.pool = nil
	}
	if n != 1 {
		s.pool = exec.NewPool(n)
	}
	return s
}

// Pool returns the suite's shared worker pool (nil when serial).
func (s *Suite) Pool() *exec.Pool { return s.pool }

// Workers reports the suite's degree of parallelism (1 when serial).
func (s *Suite) Workers() int {
	if s.pool == nil {
		return 1
	}
	return s.pool.Workers()
}

// Close releases the suite's worker pool, if any.
func (s *Suite) Close() {
	if s.pool != nil {
		s.pool.Close()
		s.pool = nil
	}
}

// runOpts returns the exec options carrying the suite's pool.
func (s *Suite) runOpts() []exec.RunOption {
	if s.pool == nil {
		return nil
	}
	return []exec.RunOption{exec.WithPool(s.pool)}
}

// NewSuite generates data at the scale factor and builds the per-mode
// physical storage with the Section 6.2 hardening policy (largest known
// super A per column width).
func NewSuite(sf float64, seed int64, runs int) (*Suite, *Data, error) {
	return NewSuiteWithChooser(sf, seed, runs, storage.LargestCodeChooser)
}

// NewSuiteWithChooser is NewSuite with an explicit hardening policy (the
// Figure 8 min-bfw sweep passes storage.MinBFWCodeChooser).
func NewSuiteWithChooser(sf float64, seed int64, runs int, choose storage.CodeChooser) (*Suite, *Data, error) {
	data, err := Generate(sf, seed)
	if err != nil {
		return nil, nil, err
	}
	db, err := exec.NewDB(data.Tables(), choose)
	if err != nil {
		return nil, nil, err
	}
	if runs < 1 {
		runs = 1
	}
	return &Suite{DB: db, Runs: runs, Warmup: 1}, data, nil
}

// Measure times one query under one mode and flavor.
func (s *Suite) Measure(query string, mode exec.Mode, flavor ops.Flavor) (Measurement, error) {
	plan, ok := Queries[query]
	if !ok {
		return Measurement{}, fmt.Errorf("ssb: unknown query %q", query)
	}
	opts := s.runOpts()
	var rows int
	for i := 0; i < s.Warmup; i++ {
		r, _, err := exec.Run(s.DB, mode, flavor, plan, opts...)
		if err != nil {
			return Measurement{}, fmt.Errorf("ssb: %s under %v: %w", query, mode, err)
		}
		rows = r.Rows()
	}
	// Report the fastest of the runs: the paper averages ten runs per
	// configuration on a quiet testbed; on shared machines the minimum
	// is the standard noise-robust estimator of the same quantity.
	best := time.Duration(1<<63 - 1)
	for i := 0; i < s.Runs; i++ {
		start := time.Now()
		if _, _, err := exec.Run(s.DB, mode, flavor, plan, opts...); err != nil {
			return Measurement{}, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return Measurement{
		Query:   query,
		Mode:    mode,
		Flavor:  flavor,
		Nanos:   float64(best.Nanoseconds()),
		Rows:    rows,
		Workers: s.Workers(),
	}, nil
}

// Run executes one query once under the suite's pool (if any) and returns
// the result and error log - the non-timing entry point Verify uses.
func (s *Suite) Run(query string, mode exec.Mode, flavor ops.Flavor) (*ops.Result, *ops.ErrorLog, error) {
	plan, ok := Queries[query]
	if !ok {
		return nil, nil, fmt.Errorf("ssb: unknown query %q", query)
	}
	return exec.Run(s.DB, mode, flavor, plan, s.runOpts()...)
}

// VerifySerialParallel runs every (query, mode) combination twice - once
// serial, once on the suite's pool - and reports any result or
// detected-error-log divergence. It is the acceptance check of the morsel
// layer: parallel execution must be bit-identical to serial, including
// the positions in the hardened error vectors. The suite must have a pool
// attached; its pool state is restored on return.
func (s *Suite) VerifySerialParallel(flavor ops.Flavor, queries []string) error {
	if s.pool == nil {
		return fmt.Errorf("ssb: VerifySerialParallel needs a pool (call WithParallelism first)")
	}
	if len(queries) == 0 {
		queries = QueryNames
	}
	pool := s.pool
	defer func() { s.pool = pool }()
	for _, q := range queries {
		for _, m := range exec.Modes {
			s.pool = nil
			sr, slog, err := s.Run(q, m, flavor)
			if err != nil {
				return fmt.Errorf("ssb: %s under %v serial: %w", q, m, err)
			}
			s.pool = pool
			pr, plog, err := s.Run(q, m, flavor)
			if err != nil {
				return fmt.Errorf("ssb: %s under %v parallel: %w", q, m, err)
			}
			if !sr.Equal(pr) {
				return fmt.Errorf("ssb: %s under %v: parallel result diverges from serial (%d vs %d rows)", q, m, pr.Rows(), sr.Rows())
			}
			if !slog.Equal(plog) {
				return fmt.Errorf("ssb: %s under %v: parallel error log diverges from serial (%d vs %d entries)", q, m, plog.Count(), slog.Count())
			}
		}
	}
	return nil
}

// MeasurementsJSON renders measurements as indented JSON - the timing
// artifact the CI benchmark-smoke job uploads.
func MeasurementsJSON(ms []Measurement) ([]byte, error) {
	type row struct {
		Query   string  `json:"query"`
		Mode    string  `json:"mode"`
		Flavor  string  `json:"flavor"`
		Nanos   float64 `json:"nanos"`
		Rows    int     `json:"rows"`
		Workers int     `json:"workers"`
	}
	rows := make([]row, len(ms))
	for i, m := range ms {
		rows[i] = row{
			Query:   m.Query,
			Mode:    m.Mode.String(),
			Flavor:  m.Flavor.String(),
			Nanos:   m.Nanos,
			Rows:    m.Rows,
			Workers: m.Workers,
		}
	}
	return json.MarshalIndent(rows, "", "  ")
}

// RunAll measures every query under every mode for one flavor, returning
// measurements in query-major order.
func (s *Suite) RunAll(flavor ops.Flavor) ([]Measurement, error) {
	var out []Measurement
	for _, q := range QueryNames {
		for _, m := range exec.Modes {
			meas, err := s.Measure(q, m, flavor)
			if err != nil {
				return nil, err
			}
			out = append(out, meas)
		}
	}
	return out, nil
}

// RelativeRuntimes converts measurements into per-query overheads relative
// to the Unprotected baseline of the same flavor - the y axis of Figures 6
// and 11.
func RelativeRuntimes(ms []Measurement) map[string]map[exec.Mode]float64 {
	base := make(map[string]float64)
	for _, m := range ms {
		if m.Mode == exec.Unprotected {
			base[m.Query] = m.Nanos
		}
	}
	out := make(map[string]map[exec.Mode]float64)
	for _, m := range ms {
		b := base[m.Query]
		if b == 0 {
			continue
		}
		if out[m.Query] == nil {
			out[m.Query] = make(map[exec.Mode]float64)
		}
		out[m.Query][m.Mode] = m.Nanos / b
	}
	return out
}

// AverageRelative averages the per-query relative runtimes per mode - the
// bars of Figure 1a. It accumulates in the fixed QueryNames x Modes order
// (not map order), so the float sums - and therefore serial-vs-parallel
// comparison output - are byte-identical across runs.
func AverageRelative(rel map[string]map[exec.Mode]float64) map[exec.Mode]float64 {
	sum := make(map[exec.Mode]float64)
	n := make(map[exec.Mode]int)
	for _, q := range QueryNames {
		per := rel[q]
		if per == nil {
			continue
		}
		for _, m := range exec.Modes {
			v, ok := per[m]
			if !ok {
				continue
			}
			sum[m] += v
			n[m]++
		}
	}
	out := make(map[exec.Mode]float64)
	for m, s := range sum {
		out[m] = s / float64(n[m])
	}
	return out
}

// StorageRelative returns per-mode storage consumption relative to
// Unprotected - Figure 1b / Figure 8b.
func (s *Suite) StorageRelative() map[exec.Mode]float64 {
	base := float64(s.DB.StorageBytes(exec.Unprotected))
	out := make(map[exec.Mode]float64)
	for _, m := range exec.Modes {
		out[m] = float64(s.DB.StorageBytes(m)) / base
	}
	return out
}

// PrintRelativeTable writes the Figure 6/11-style table: one row per
// query, one column per mode, relative to Unprotected.
func PrintRelativeTable(w io.Writer, rel map[string]map[exec.Mode]float64, flavor ops.Flavor) {
	fmt.Fprintf(w, "Relative SSB runtimes (%s execution, Unprotected = 1.00)\n", flavor)
	fmt.Fprintf(w, "%-6s", "query")
	for _, m := range exec.Modes {
		fmt.Fprintf(w, "%12s", m)
	}
	fmt.Fprintln(w)
	for _, q := range QueryNames {
		per := rel[q]
		if per == nil {
			continue
		}
		fmt.Fprintf(w, "%-6s", q)
		for _, m := range exec.Modes {
			fmt.Fprintf(w, "%12.2f", per[m])
		}
		fmt.Fprintln(w)
	}
}

// SpeedupScalarOverVectorized computes, per mode, the factor by which the
// blocked flavor beats the scalar one on queries Q1.1-Q1.3 - the arrows
// of Figure 7.
func (s *Suite) SpeedupScalarOverVectorized() (map[exec.Mode]float64, error) {
	out := make(map[exec.Mode]float64)
	for _, m := range exec.Modes {
		var scalar, blocked float64
		for _, q := range []string{"Q1.1", "Q1.2", "Q1.3"} {
			ms, err := s.Measure(q, m, ops.Scalar)
			if err != nil {
				return nil, err
			}
			mb, err := s.Measure(q, m, ops.Blocked)
			if err != nil {
				return nil, err
			}
			scalar += ms.Nanos
			blocked += mb.Nanos
		}
		out[m] = scalar / blocked
	}
	return out, nil
}
