package ssb

import (
	"fmt"
	"io"
	"time"

	"ahead/internal/exec"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// Measurement is one (query, mode, flavor) timing.
type Measurement struct {
	Query  string
	Mode   exec.Mode
	Flavor ops.Flavor
	Nanos  float64 // average nanoseconds per run
	Rows   int     // result rows (sanity)
}

// Suite runs the SSB benchmark: all 13 queries under the selected modes
// and flavors, repeated Runs times, as Section 6.2 does per scale factor.
type Suite struct {
	DB     *exec.DB
	Runs   int
	Warmup int
}

// NewSuite generates data at the scale factor and builds the per-mode
// physical storage with the Section 6.2 hardening policy (largest known
// super A per column width).
func NewSuite(sf float64, seed int64, runs int) (*Suite, *Data, error) {
	return NewSuiteWithChooser(sf, seed, runs, storage.LargestCodeChooser)
}

// NewSuiteWithChooser is NewSuite with an explicit hardening policy (the
// Figure 8 min-bfw sweep passes storage.MinBFWCodeChooser).
func NewSuiteWithChooser(sf float64, seed int64, runs int, choose storage.CodeChooser) (*Suite, *Data, error) {
	data, err := Generate(sf, seed)
	if err != nil {
		return nil, nil, err
	}
	db, err := exec.NewDB(data.Tables(), choose)
	if err != nil {
		return nil, nil, err
	}
	if runs < 1 {
		runs = 1
	}
	return &Suite{DB: db, Runs: runs, Warmup: 1}, data, nil
}

// Measure times one query under one mode and flavor.
func (s *Suite) Measure(query string, mode exec.Mode, flavor ops.Flavor) (Measurement, error) {
	plan, ok := Queries[query]
	if !ok {
		return Measurement{}, fmt.Errorf("ssb: unknown query %q", query)
	}
	var rows int
	for i := 0; i < s.Warmup; i++ {
		r, _, err := exec.Run(s.DB, mode, flavor, plan)
		if err != nil {
			return Measurement{}, fmt.Errorf("ssb: %s under %v: %w", query, mode, err)
		}
		rows = r.Rows()
	}
	// Report the fastest of the runs: the paper averages ten runs per
	// configuration on a quiet testbed; on shared machines the minimum
	// is the standard noise-robust estimator of the same quantity.
	best := time.Duration(1<<63 - 1)
	for i := 0; i < s.Runs; i++ {
		start := time.Now()
		if _, _, err := exec.Run(s.DB, mode, flavor, plan); err != nil {
			return Measurement{}, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return Measurement{
		Query:  query,
		Mode:   mode,
		Flavor: flavor,
		Nanos:  float64(best.Nanoseconds()),
		Rows:   rows,
	}, nil
}

// RunAll measures every query under every mode for one flavor, returning
// measurements in query-major order.
func (s *Suite) RunAll(flavor ops.Flavor) ([]Measurement, error) {
	var out []Measurement
	for _, q := range QueryNames {
		for _, m := range exec.Modes {
			meas, err := s.Measure(q, m, flavor)
			if err != nil {
				return nil, err
			}
			out = append(out, meas)
		}
	}
	return out, nil
}

// RelativeRuntimes converts measurements into per-query overheads relative
// to the Unprotected baseline of the same flavor - the y axis of Figures 6
// and 11.
func RelativeRuntimes(ms []Measurement) map[string]map[exec.Mode]float64 {
	base := make(map[string]float64)
	for _, m := range ms {
		if m.Mode == exec.Unprotected {
			base[m.Query] = m.Nanos
		}
	}
	out := make(map[string]map[exec.Mode]float64)
	for _, m := range ms {
		b := base[m.Query]
		if b == 0 {
			continue
		}
		if out[m.Query] == nil {
			out[m.Query] = make(map[exec.Mode]float64)
		}
		out[m.Query][m.Mode] = m.Nanos / b
	}
	return out
}

// AverageRelative averages the per-query relative runtimes per mode - the
// bars of Figure 1a.
func AverageRelative(rel map[string]map[exec.Mode]float64) map[exec.Mode]float64 {
	sum := make(map[exec.Mode]float64)
	n := make(map[exec.Mode]int)
	for _, per := range rel {
		for m, v := range per {
			sum[m] += v
			n[m]++
		}
	}
	out := make(map[exec.Mode]float64)
	for m, s := range sum {
		out[m] = s / float64(n[m])
	}
	return out
}

// StorageRelative returns per-mode storage consumption relative to
// Unprotected - Figure 1b / Figure 8b.
func (s *Suite) StorageRelative() map[exec.Mode]float64 {
	base := float64(s.DB.StorageBytes(exec.Unprotected))
	out := make(map[exec.Mode]float64)
	for _, m := range exec.Modes {
		out[m] = float64(s.DB.StorageBytes(m)) / base
	}
	return out
}

// PrintRelativeTable writes the Figure 6/11-style table: one row per
// query, one column per mode, relative to Unprotected.
func PrintRelativeTable(w io.Writer, rel map[string]map[exec.Mode]float64, flavor ops.Flavor) {
	fmt.Fprintf(w, "Relative SSB runtimes (%s execution, Unprotected = 1.00)\n", flavor)
	fmt.Fprintf(w, "%-6s", "query")
	for _, m := range exec.Modes {
		fmt.Fprintf(w, "%12s", m)
	}
	fmt.Fprintln(w)
	for _, q := range QueryNames {
		per := rel[q]
		if per == nil {
			continue
		}
		fmt.Fprintf(w, "%-6s", q)
		for _, m := range exec.Modes {
			fmt.Fprintf(w, "%12.2f", per[m])
		}
		fmt.Fprintln(w)
	}
}

// SpeedupScalarOverVectorized computes, per mode, the factor by which the
// blocked flavor beats the scalar one on queries Q1.1-Q1.3 - the arrows
// of Figure 7.
func (s *Suite) SpeedupScalarOverVectorized() (map[exec.Mode]float64, error) {
	out := make(map[exec.Mode]float64)
	for _, m := range exec.Modes {
		var scalar, blocked float64
		for _, q := range []string{"Q1.1", "Q1.2", "Q1.3"} {
			ms, err := s.Measure(q, m, ops.Scalar)
			if err != nil {
				return nil, err
			}
			mb, err := s.Measure(q, m, ops.Blocked)
			if err != nil {
				return nil, err
			}
			scalar += ms.Nanos
			blocked += mb.Nanos
		}
		out[m] = scalar / blocked
	}
	return out, nil
}
