package ssb

import (
	"strings"
	"testing"

	"ahead/internal/exec"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

func TestSuiteMeasureAndRelatives(t *testing.T) {
	suite, data, err := NewSuite(0.003, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	if data.Lineorder.Rows() != 18000 {
		t.Fatalf("rows %d", data.Lineorder.Rows())
	}
	m, err := suite.Measure("Q1.1", exec.Continuous, ops.Blocked)
	if err != nil {
		t.Fatal(err)
	}
	if m.Nanos <= 0 {
		t.Fatal("non-positive runtime")
	}
	if _, err := suite.Measure("Q9.9", exec.Continuous, ops.Scalar); err == nil {
		t.Fatal("unknown query must error")
	}

	// A reduced RunAll across three queries via direct Measure calls,
	// then the relative/averaging pipeline.
	var ms []Measurement
	for _, q := range []string{"Q1.1", "Q1.2"} {
		for _, mode := range exec.Modes {
			meas, err := suite.Measure(q, mode, ops.Scalar)
			if err != nil {
				t.Fatal(err)
			}
			ms = append(ms, meas)
		}
	}
	rel := RelativeRuntimes(ms)
	if rel["Q1.1"][exec.Unprotected] != 1.0 {
		t.Fatalf("baseline must be 1.0, got %v", rel["Q1.1"][exec.Unprotected])
	}
	for _, q := range []string{"Q1.1", "Q1.2"} {
		for _, mode := range exec.Modes {
			v := rel[q][mode]
			if v <= 0 || v > 100 {
				t.Fatalf("%s/%v relative runtime %v implausible", q, mode, v)
			}
		}
	}
	avg := AverageRelative(rel)
	if avg[exec.Unprotected] != 1.0 {
		t.Fatalf("average baseline %v", avg[exec.Unprotected])
	}
	// DMR must cost roughly double; allow generous slack on tiny data
	// and shared machines.
	if avg[exec.DMR] < 1.2 {
		t.Errorf("DMR average %v, expected ~2x", avg[exec.DMR])
	}

	var sb strings.Builder
	PrintRelativeTable(&sb, rel, ops.Scalar)
	outStr := sb.String()
	if !strings.Contains(outStr, "Q1.1") || !strings.Contains(outStr, "Continuous") {
		t.Fatalf("table output missing fields:\n%s", outStr)
	}

	stor := suite.StorageRelative()
	if stor[exec.Unprotected] != 1.0 || stor[exec.DMR] != 2.0 {
		t.Fatalf("storage relatives %v", stor)
	}
	if stor[exec.Continuous] <= 1.0 || stor[exec.Continuous] >= 2.1 {
		t.Fatalf("AHEAD storage relative %v", stor[exec.Continuous])
	}
}

func TestSuiteWithMinBFWChooser(t *testing.T) {
	// The Figure 8 sweep: hardening with the smallest A per minimum
	// bit-flip weight still yields correct results.
	for _, bfw := range []int{1, 2, 3} {
		suite, _, err := NewSuiteWithChooser(0.002, 7, 1, storage.MinBFWCodeChooser(bfw))
		if err != nil {
			t.Fatalf("bfw=%d: %v", bfw, err)
		}
		ref, _, err := exec.Run(suite.DB, exec.Unprotected, ops.Scalar, Q11)
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := exec.Run(suite.DB, exec.Continuous, ops.Scalar, Q11)
		if err != nil {
			t.Fatalf("bfw=%d: %v", bfw, err)
		}
		if !ref.Equal(got) {
			t.Fatalf("bfw=%d: Q1.1 differs under continuous", bfw)
		}
	}
}

func TestSpeedupMeasurement(t *testing.T) {
	suite, _, err := NewSuite(0.002, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := suite.SpeedupScalarOverVectorized()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range exec.Modes {
		if sp[m] <= 0 {
			t.Fatalf("speedup for %v = %v", m, sp[m])
		}
	}
}
