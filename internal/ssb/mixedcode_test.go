package ssb

import (
	"testing"

	"ahead/internal/an"
	"ahead/internal/exec"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// TestProfitQueriesAfterPartialReharden reproduces what the online
// adaptive controller does to a live database under a fault step:
// escalate lo_revenue's code while lo_supplycost keeps the weak
// starting A. The Q4.x profit flights subtract the two measures, so
// they must renormalize the mixed-A pair (an.DiffFactor) and keep
// returning the pre-escalation answers in every mode, fused and
// materialized, with no spurious detections.
func TestProfitQueriesAfterPartialReharden(t *testing.T) {
	data, err := Generate(0.005, 11)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.MinBFWCodeChooser(1))
	if err != nil {
		t.Fatal(err)
	}
	plans := []string{"Q4.1", "Q4.2"}
	refs := map[string]*ops.Result{}
	for _, name := range plans {
		res, log, err := exec.Run(db, exec.Continuous, ops.Blocked, Queries[name])
		if err != nil {
			t.Fatalf("%s before reharden: %v", name, err)
		}
		if log.Count() != 0 {
			t.Fatalf("%s before reharden: %d spurious detections", name, log.Count())
		}
		if res.Rows() == 0 {
			t.Fatalf("%s selects nothing; test is vacuous", name)
		}
		refs[name] = res
	}

	rev := db.Hardened("lineorder").MustColumn("lo_revenue")
	next, ok := an.NextLarger(rev.Code())
	if !ok {
		t.Fatal("no larger code to escalate to")
	}
	if _, err := db.RehardenColumn("lineorder", "lo_revenue", next); err != nil {
		t.Fatal(err)
	}
	cost := db.Hardened("lineorder").MustColumn("lo_supplycost")
	now := db.Hardened("lineorder").MustColumn("lo_revenue")
	if now.Code().A() == cost.Code().A() {
		t.Fatal("escalation did not diverge the measure codes; test is vacuous")
	}

	for _, name := range plans {
		for _, m := range exec.Modes {
			for _, fused := range []bool{false, true} {
				res, log, err := exec.Run(db, m, ops.Blocked, Queries[name], exec.WithFusion(fused))
				if err != nil {
					t.Fatalf("%s %v fused=%v after reharden: %v", name, m, fused, err)
				}
				if log.Count() != 0 {
					t.Fatalf("%s %v fused=%v after reharden: %d spurious detections", name, m, fused, log.Count())
				}
				if !res.Equal(refs[name]) {
					t.Fatalf("%s %v fused=%v: result diverged after partial reharden: %s",
						name, m, fused, firstDivergence(refs[name], res))
				}
			}
		}
	}

	// Detection still keys on each measure's own code: flips planted in
	// the escalated column are reported at the same positions by the
	// fused and materializing plans.
	for i := 50; i < now.Len(); i += 97 {
		now.Corrupt(i, 1<<13)
	}
	var positions [2][]uint64
	for fi, fused := range []bool{true, false} {
		_, log, err := exec.Run(db, exec.Continuous, ops.Blocked, Queries["Q4.1"], exec.WithFusion(fused))
		if err != nil {
			t.Fatalf("corrupted fused=%v: %v", fused, err)
		}
		positions[fi], err = log.Positions("lo_revenue")
		if err != nil {
			t.Fatal(err)
		}
		if len(positions[fi]) == 0 {
			t.Fatalf("fused=%v: no lo_revenue detections on corrupted column", fused)
		}
	}
	if len(positions[0]) != len(positions[1]) {
		t.Fatalf("fused and materialized disagree on corrupted positions: %d vs %d",
			len(positions[0]), len(positions[1]))
	}
	for i := range positions[0] {
		if positions[0][i] != positions[1][i] {
			t.Fatalf("corrupted position %d: fused %d vs materialized %d", i, positions[0][i], positions[1][i])
		}
	}
}
