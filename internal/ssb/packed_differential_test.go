package ssb

import (
	"fmt"
	"testing"

	"ahead/internal/exec"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// TestPackedDifferentialCrossMode is the A/B differential of the
// direct-on-compressed kernels: every SSB query under every hardened
// mode x {serial, pooled} x {fused, materializing}, run once on the
// packed path (the default) and once with WithPacked(false), must
// produce identical results and byte-identical error logs. Together
// with TestDifferentialCrossMode (which pins the default path to the
// unprotected reference) this proves enabling the packed kernels
// changes throughput and nothing else.
func TestPackedDifferentialCrossMode(t *testing.T) {
	data, err := Generate(0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	if db.Hardened("lineorder").MustColumn("lo_discount").Packed() == nil {
		t.Fatal("lo_discount must carry a packed mirror; the A/B pair is vacuous without it")
	}
	pool := exec.NewPool(4)
	defer pool.Close()

	for _, name := range QueryNames {
		plan := Queries[name]
		for _, mode := range diffModes {
			for _, fused := range []bool{true, false} {
				for _, pooled := range []bool{false, true} {
					opts := []exec.RunOption{exec.WithFusion(fused)}
					if pooled {
						opts = append(opts, exec.WithPool(pool))
					}
					want, wantLog, err := exec.Run(db, mode, ops.Blocked, plan, append(opts, exec.WithPacked(false))...)
					if err != nil {
						t.Fatalf("%s %v fused=%v pooled=%v wide: %v", name, mode, fused, pooled, err)
					}
					got, gotLog, err := exec.Run(db, mode, ops.Blocked, plan, opts...)
					if err != nil {
						t.Fatalf("%s %v fused=%v pooled=%v packed: %v", name, mode, fused, pooled, err)
					}
					if !want.Equal(got) {
						t.Fatalf("%s %v fused=%v pooled=%v: packed diverges from wide: %s",
							name, mode, fused, pooled, firstDivergence(want, got))
					}
					if !gotLog.Equal(wantLog) {
						t.Fatalf("%s %v fused=%v pooled=%v: packed log differs from wide (%d vs %d entries)",
							name, mode, fused, pooled, gotLog.Count(), wantLog.Count())
					}
				}
			}
		}
	}
}

// TestPackedDifferentialFaultLogs injects single-bit faults into
// lo_discount - a 16-bit-code column the packed scan kernels serve -
// and requires the packed and wide paths to drop the same rows and log
// the same corrupted positions, in the same order, serial and pooled.
func TestPackedDifferentialFaultLogs(t *testing.T) {
	data, err := Generate(0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	disc := db.Hardened("lineorder").MustColumn("lo_discount")
	if disc.Packed() == nil {
		t.Fatal("lo_discount must carry a packed mirror")
	}
	for i := 30; i < disc.Len(); i += 113 {
		disc.Corrupt(i, 1<<uint(i%16))
	}
	pool := exec.NewPool(4)
	defer pool.Close()

	for _, name := range []string{"Q1.1", "Q1.2"} {
		plan := Queries[name]
		for _, fused := range []bool{true, false} {
			for _, pooled := range []bool{false, true} {
				opts := []exec.RunOption{exec.WithFusion(fused)}
				if pooled {
					opts = append(opts, exec.WithPool(pool))
				}
				want, wantLog, err := exec.Run(db, exec.Continuous, ops.Blocked, plan, append(opts, exec.WithPacked(false))...)
				if err != nil {
					t.Fatalf("%s fused=%v pooled=%v wide: %v", name, fused, pooled, err)
				}
				got, gotLog, err := exec.Run(db, exec.Continuous, ops.Blocked, plan, opts...)
				if err != nil {
					t.Fatalf("%s fused=%v pooled=%v packed: %v", name, fused, pooled, err)
				}
				if !want.Equal(got) {
					t.Fatalf("%s fused=%v pooled=%v: packed result diverges under faults: %s",
						name, fused, pooled, firstDivergence(want, got))
				}
				wantPos, err := wantLog.Positions("lo_discount")
				if err != nil {
					t.Fatal(err)
				}
				if len(wantPos) == 0 {
					t.Fatalf("%s fused=%v: corruption went undetected; test is vacuous", name, fused)
				}
				gotPos, err := gotLog.Positions("lo_discount")
				if err != nil {
					t.Fatal(err)
				}
				if fmt.Sprint(gotPos) != fmt.Sprint(wantPos) {
					t.Fatalf("%s fused=%v pooled=%v: packed logged %v, wide %v",
						name, fused, pooled, gotPos, wantPos)
				}
				if !gotLog.Equal(wantLog) {
					t.Fatalf("%s fused=%v pooled=%v: packed log differs from wide (%d vs %d entries)",
						name, fused, pooled, gotLog.Count(), wantLog.Count())
				}
			}
		}
	}
}
