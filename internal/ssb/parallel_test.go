package ssb

import (
	"testing"

	"ahead/internal/exec"
	"ahead/internal/faults"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// newParallelSuite builds a suite over sf-0.01 data (60K lineorder rows)
// with a small-morsel pool attached, so every query splits into many
// morsels across few workers and the stealing and merge paths are
// genuinely exercised.
func newParallelSuite(t *testing.T) *Suite {
	t.Helper()
	data, err := Generate(0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	s := &Suite{DB: db, Runs: 1, Warmup: 0}
	s.pool = exec.NewPoolMorsel(4, 4096)
	t.Cleanup(s.Close)
	return s
}

// TestParallelMatchesSerialAllModes is the tentpole acceptance test:
// representative queries of all four SSB flights, under all six detection
// modes, with bit flips injected into hardened base columns so the error
// vectors are non-empty - parallel results AND detected-error positions
// must equal the serial ones exactly.
func TestParallelMatchesSerialAllModes(t *testing.T) {
	s := newParallelSuite(t)
	// Flips in a probed FK and a summed measure put entries into the
	// Continuous/Reencoding logs of every flight (DMR/Early/Late read
	// other physical copies or detect elsewhere; their serial/parallel
	// equality is still checked on results and logs).
	inj := faults.NewInjector(5)
	if _, err := inj.FlipRandom(s.DB.Hardened("lineorder").MustColumn("lo_partkey"), 10, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := inj.FlipRandom(s.DB.Hardened("lineorder").MustColumn("lo_revenue"), 10, 2); err != nil {
		t.Fatal(err)
	}
	queries := []string{"Q1.1", "Q2.1", "Q3.1", "Q4.1"}
	if err := s.VerifySerialParallel(ops.Blocked, queries); err != nil {
		t.Fatal(err)
	}
	if err := s.VerifySerialParallel(ops.Scalar, []string{"Q2.1"}); err != nil {
		t.Fatal(err)
	}
}

// TestParallelTMRMatchesSerial covers the seventh mode: TMR replicas as
// pool jobs must vote to the same answer as the serial three-pass run.
func TestParallelTMRMatchesSerial(t *testing.T) {
	s := newParallelSuite(t)
	sr, slog, err := exec.Run(s.DB, exec.TMR, ops.Blocked, Queries["Q2.1"])
	if err != nil {
		t.Fatal(err)
	}
	pr, plog, err := exec.Run(s.DB, exec.TMR, ops.Blocked, Queries["Q2.1"], exec.WithPool(s.pool))
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Equal(pr) {
		t.Fatalf("parallel TMR result diverges (%d vs %d rows)", pr.Rows(), sr.Rows())
	}
	if !slog.Equal(plog) {
		t.Fatal("parallel TMR error log diverges from serial")
	}
}

// TestParallelFaultAttributedToGlobalRow proves the error-vector merge
// invariant end to end: a flip placed inside a *later* morsel must be
// reported at its global row position, identically by the serial and the
// morsel-parallel run.
func TestParallelFaultAttributedToGlobalRow(t *testing.T) {
	s := newParallelSuite(t)
	morsel := s.pool.MorselSize()
	fk := s.DB.Hardened("lineorder").MustColumn("lo_partkey")
	pos := 5*morsel + 123 // deep inside the sixth morsel
	if pos >= fk.Len() {
		t.Fatalf("test data too small: %d rows, need > %d", fk.Len(), pos)
	}
	inj := faults.NewInjector(9)
	if _, err := inj.FlipAt(fk, pos, 2); err != nil {
		t.Fatal(err)
	}

	_, slog, err := exec.Run(s.DB, exec.Continuous, ops.Blocked, Queries["Q2.1"])
	if err != nil {
		t.Fatal(err)
	}
	_, plog, err := exec.Run(s.DB, exec.Continuous, ops.Blocked, Queries["Q2.1"], exec.WithPool(s.pool))
	if err != nil {
		t.Fatal(err)
	}
	for name, log := range map[string]*ops.ErrorLog{"serial": slog, "parallel": plog} {
		got, err := log.Positions("lo_partkey")
		if err != nil {
			t.Fatalf("%s log: %v", name, err)
		}
		if len(got) != 1 || got[0] != uint64(pos) {
			t.Fatalf("%s run attributed the flip to %v, want [%d]", name, got, pos)
		}
	}
	if !slog.Equal(plog) {
		t.Fatal("serial and parallel logs diverge")
	}
}

// TestWithParallelismTransientPool covers the one-shot option: a run with
// WithParallelism must produce the serial answer and tear its pool down.
func TestWithParallelismTransientPool(t *testing.T) {
	s := newParallelSuite(t)
	sr, _, err := exec.Run(s.DB, exec.Continuous, ops.Blocked, Queries["Q1.1"])
	if err != nil {
		t.Fatal(err)
	}
	pr, _, err := exec.Run(s.DB, exec.Continuous, ops.Blocked, Queries["Q1.1"], exec.WithParallelism(2))
	if err != nil {
		t.Fatal(err)
	}
	if !sr.Equal(pr) {
		t.Fatal("WithParallelism run diverges from serial")
	}
}

// TestMeasurementsJSON sanity-checks the CI timing artifact shape.
func TestMeasurementsJSON(t *testing.T) {
	ms := []Measurement{{Query: "Q1.1", Mode: exec.Continuous, Flavor: ops.Blocked, Nanos: 12.5, Rows: 1, Workers: 4}}
	data, err := MeasurementsJSON(ms)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"Q1.1"`, `"Continuous"`, `"blocked"`, `"workers": 4`} {
		if !contains(string(data), want) {
			t.Fatalf("artifact %s missing %s", data, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
