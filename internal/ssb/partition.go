package ssb

import (
	"fmt"

	"ahead/internal/cluster"
	"ahead/internal/exec"
	"ahead/internal/storage"
)

// Partition returns the shard-local view of the generated data: the
// lineorder fact table reduced to the rows whose lo_orderkey hashes to
// the shard, dimensions untouched (replicated on every shard). Every
// shard calls Generate with the same (sf, seed) and slices its own
// partition, so the cluster's union of fact rows is exactly the
// single-node table and all shards share identical dimension
// dictionaries - the precondition for merging dictionary-coded group
// keys at the router.
//
// Partitioning hashes lo_orderkey (cluster.Hash64), co-locating the
// line items of one order the way a distributed loader would.
func Partition(d *Data, shard cluster.ShardSpec) (*Data, error) {
	if !shard.Sharded() {
		return d, nil
	}
	key, err := d.Lineorder.Column("lo_orderkey")
	if err != nil {
		return nil, fmt.Errorf("ssb: partition: %w", err)
	}
	n := key.Len()
	rows := make([]int, 0, n/shard.Count+1)
	for i := 0; i < n; i++ {
		if cluster.AssignShard(key.Value(i), shard.Count) == shard.Index {
			rows = append(rows, i)
		}
	}
	lo, err := d.Lineorder.Slice(rows)
	if err != nil {
		return nil, err
	}
	return &Data{
		Lineorder: lo,
		Date:      d.Date,
		Customer:  d.Customer,
		Supplier:  d.Supplier,
		Part:      d.Part,
	}, nil
}

// NewShardSuite is NewSuite restricted to one shard's partition: the
// full data set is generated deterministically, the fact table sliced,
// and the per-mode physical storage (replicas, hardened tables) built
// over the slice only - a shard pays storage for its own rows plus the
// replicated dimensions.
func NewShardSuite(sf float64, seed int64, runs int, shard cluster.ShardSpec) (*Suite, *Data, error) {
	return NewShardSuiteWithChooser(sf, seed, runs, shard, storage.LargestCodeChooser)
}

// NewShardSuiteWithChooser is NewShardSuite with an explicit hardening
// policy - the adaptive-serving path starts every column at the weakest
// published code (storage.MinBFWCodeChooser(1)) and lets the controller
// climb from there.
func NewShardSuiteWithChooser(sf float64, seed int64, runs int, shard cluster.ShardSpec, choose storage.CodeChooser) (*Suite, *Data, error) {
	data, err := Generate(sf, seed)
	if err != nil {
		return nil, nil, err
	}
	if data, err = Partition(data, shard); err != nil {
		return nil, nil, err
	}
	db, err := exec.NewDB(data.Tables(), choose)
	if err != nil {
		return nil, nil, err
	}
	if runs < 1 {
		runs = 1
	}
	return &Suite{DB: db, Runs: runs, Warmup: 1}, data, nil
}

// NewReplicaSuite builds one replica of a shard's partition. Every
// replica of a slice runs the identical deterministic pipeline -
// same generation, same hash partition, same physical storage - so
// any replica's AN-encoded partial is byte-interchangeable with its
// peers' and the router may merge whichever answers first. The
// replica index carries no data meaning; it exists so callers keep
// one constructor for both roles.
func NewReplicaSuite(sf float64, seed int64, runs int, shard cluster.ShardSpec, replica int) (*Suite, *Data, error) {
	return NewReplicaSuiteWithChooser(sf, seed, runs, shard, replica, storage.LargestCodeChooser)
}

// NewReplicaSuiteWithChooser is NewReplicaSuite with an explicit
// hardening policy.
func NewReplicaSuiteWithChooser(sf float64, seed int64, runs int, shard cluster.ShardSpec, replica int, choose storage.CodeChooser) (*Suite, *Data, error) {
	if replica < 0 {
		return nil, nil, fmt.Errorf("ssb: replica index %d must be >= 0", replica)
	}
	return NewShardSuiteWithChooser(sf, seed, runs, shard, choose)
}
