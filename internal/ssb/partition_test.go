package ssb

import (
	"testing"

	"ahead/internal/cluster"
)

// TestReplicaSuiteDeterministic pins the replica contract: every
// replica of a slice builds the identical partition from (sf, seed,
// shard) alone, so the router may treat their partials as
// interchangeable. Two replicas of the same slice must agree
// column-for-column; a different slice must not.
func TestReplicaSuiteDeterministic(t *testing.T) {
	shard := cluster.ShardSpec{Index: 1, Count: 3}
	_, d0, err := NewReplicaSuite(0.005, 7, 1, shard, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, d1, err := NewReplicaSuite(0.005, 7, 1, shard, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d0.Lineorder.Rows() != d1.Lineorder.Rows() {
		t.Fatalf("replicas disagree on partition size: %d vs %d", d0.Lineorder.Rows(), d1.Lineorder.Rows())
	}
	sum := func(d *Data) uint64 {
		col, err := d.Lineorder.Column("lo_orderkey")
		if err != nil {
			t.Fatal(err)
		}
		var s uint64
		for i := 0; i < col.Len(); i++ {
			s += col.Value(i) * uint64(i+1)
		}
		return s
	}
	if sum(d0) != sum(d1) {
		t.Fatal("replicas of one slice must hold byte-identical fact partitions")
	}

	_, other, err := NewReplicaSuite(0.005, 7, 1, cluster.ShardSpec{Index: 2, Count: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum(other) == sum(d0) && other.Lineorder.Rows() == d0.Lineorder.Rows() {
		t.Fatal("distinct slices produced the same partition")
	}

	if _, _, err := NewReplicaSuite(0.005, 7, 1, shard, -1); err == nil {
		t.Fatal("negative replica index must be rejected")
	}
}
