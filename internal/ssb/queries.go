package ssb

import (
	"ahead/internal/exec"
	"ahead/internal/hashmap"
	"ahead/internal/ops"
)

// QueryNames lists the 13 SSB queries in benchmark order.
var QueryNames = []string{
	"Q1.1", "Q1.2", "Q1.3",
	"Q2.1", "Q2.2", "Q2.3",
	"Q3.1", "Q3.2", "Q3.3", "Q3.4",
	"Q4.1", "Q4.2", "Q4.3",
}

// Queries maps query names to their manually written plans (Section 6.1),
// each usable under every execution mode.
var Queries = map[string]exec.QueryFunc{
	"Q1.1": Q11, "Q1.2": Q12, "Q1.3": Q13,
	"Q2.1": Q21, "Q2.2": Q22, "Q2.3": Q23,
	"Q3.1": Q31, "Q3.2": Q32, "Q3.3": Q33, "Q3.4": Q34,
	"Q4.1": Q41, "Q4.2": Q42, "Q4.3": Q43,
}

// pred is an inclusive range predicate on one column - the normal form
// every SSB comparison reduces to (equality is lo == hi).
type pred struct {
	col    string
	lo, hi uint64
}

// eqStr translates an equality predicate on a dictionary-encoded string
// column into a code-range predicate. A value missing from the dictionary
// yields an empty range.
func eqStr(q *exec.Query, table, col, val string) (pred, error) {
	d, err := q.Dict(table, col)
	if err != nil {
		return pred{}, err
	}
	code, ok := d.Code(val)
	if !ok {
		return pred{col: col, lo: 1, hi: 0}, nil // empty
	}
	return pred{col: col, lo: uint64(code), hi: uint64(code)}, nil
}

// rangeStr translates an inclusive string range into a code range.
func rangeStr(q *exec.Query, table, col, lo, hi string) (pred, error) {
	d, err := q.Dict(table, col)
	if err != nil {
		return pred{}, err
	}
	first, last, ok := d.CodeRange(lo, hi)
	if !ok {
		return pred{col: col, lo: 1, hi: 0}, nil
	}
	return pred{col: col, lo: uint64(first), hi: uint64(last)}, nil
}

// filterTable applies conjunctive range predicates to a table and returns
// the qualifying selection.
func filterTable(q *exec.Query, table string, preds []pred) (*ops.Sel, error) {
	o := q.Opts()
	var sel *ops.Sel
	for i, p := range preds {
		col, err := q.Col(table, p.col)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			sel, err = ops.Filter(col, p.lo, p.hi, o)
		} else {
			sel, err = ops.FilterSel(col, p.lo, p.hi, sel, o)
		}
		if err != nil {
			return nil, err
		}
	}
	return sel, nil
}

// filterIn applies a disjunction of equality predicates (the IN lists of
// Q3.3/Q3.4) on one column, unioning the per-value selections.
func filterIn(q *exec.Query, table, col string, vals []string) (*ops.Sel, error) {
	d, err := q.Dict(table, col)
	if err != nil {
		return nil, err
	}
	c, err := q.Col(table, col)
	if err != nil {
		return nil, err
	}
	o := q.Opts()
	var merged *ops.Sel
	for _, v := range vals {
		code, ok := d.Code(v)
		if !ok {
			continue
		}
		s, err := ops.Filter(c, uint64(code), uint64(code), o)
		if err != nil {
			return nil, err
		}
		merged = unionSels(merged, s)
	}
	if merged == nil {
		merged = &ops.Sel{Hardened: o.HardenIDs}
	}
	return merged, nil
}

// unionSels merges two selections (disjoint by construction) preserving
// position order. Hardened positions merge on their raw form: PosCode
// encoding is monotonic, so raw order equals plain order.
func unionSels(a, b *ops.Sel) *ops.Sel {
	if a == nil {
		return b
	}
	out := &ops.Sel{Pos: make([]uint64, 0, a.Len()+b.Len()), Hardened: a.Hardened}
	i, j := 0, 0
	for i < a.Len() && j < b.Len() {
		if a.Pos[i] <= b.Pos[j] {
			out.Pos = append(out.Pos, a.Pos[i])
			i++
		} else {
			out.Pos = append(out.Pos, b.Pos[j])
			j++
		}
	}
	out.Pos = append(out.Pos, a.Pos[i:]...)
	out.Pos = append(out.Pos, b.Pos[j:]...)
	return out
}

// buildDim filters a dimension table and builds the join hash table over
// its key column.
func buildDim(q *exec.Query, table, key string, preds []pred) (*hashmap.U64, error) {
	sel, err := filterTable(q, table, preds)
	if err != nil {
		return nil, err
	}
	keyCol, err := q.Col(table, key)
	if err != nil {
		return nil, err
	}
	return ops.HashBuild(keyCol, sel, q.Opts())
}

// buildDimSel builds the hash table over an externally computed selection.
func buildDimSel(q *exec.Query, table, key string, sel *ops.Sel) (*hashmap.U64, error) {
	keyCol, err := q.Col(table, key)
	if err != nil {
		return nil, err
	}
	return ops.HashBuild(keyCol, sel, q.Opts())
}

// allRows selects every row of a table (the unfiltered date dimension of
// the group-by queries).
func allRows(q *exec.Query, table, anyCol string) (*ops.Sel, error) {
	col, err := q.Col(table, anyCol)
	if err != nil {
		return nil, err
	}
	return ops.Filter(col, 0, ^uint64(0), q.Opts())
}

// gatherDim fetches a dimension attribute aligned with the fact selection:
// it re-probes the FK column (all rows of sel match by construction) and
// gathers the attribute at the matched build positions.
func gatherDim(q *exec.Query, sel *ops.Sel, fkTable, fkCol string, ht *hashmap.U64, dimTable, attr string) (*ops.Vec, error) {
	fk, err := q.Col(fkTable, fkCol)
	if err != nil {
		return nil, err
	}
	_, buildPos, err := ops.HashProbe(fk, ht, sel, q.Opts())
	if err != nil {
		return nil, err
	}
	col, err := q.Col(dimTable, attr)
	if err != nil {
		return nil, err
	}
	vec, err := ops.GatherAt(col, buildPos, q.Opts())
	if err != nil {
		return nil, err
	}
	return q.Reencode(vec)
}

// gatherFact fetches a lineorder column at the final selection.
func gatherFact(q *exec.Query, col string, sel *ops.Sel) (*ops.Vec, error) {
	c, err := q.Col("lineorder", col)
	if err != nil {
		return nil, err
	}
	vec, err := ops.Gather(c, sel, q.Opts())
	if err != nil {
		return nil, err
	}
	return q.Reencode(vec)
}

// q1Flight is the shared shape of the three Q1.x flights: lineorder local
// filters, a date semijoin, and the discounted-revenue scalar aggregate.
// All modes except ContinuousReencoding take the fused single-pass tail;
// q1FlightMaterialized keeps the operator-at-a-time pipeline (and serves
// as the benchmark baseline fusion is measured against).
func q1Flight(q *exec.Query, datePreds []pred, discLo, discHi, qtyLo, qtyHi uint64) (*ops.Result, error) {
	dateHT, err := buildDim(q, "date", "d_datekey", datePreds)
	if err != nil {
		return nil, err
	}
	if q.FuseOperators() {
		disc, err := q.Col("lineorder", "lo_discount")
		if err != nil {
			return nil, err
		}
		qty, err := q.Col("lineorder", "lo_quantity")
		if err != nil {
			return nil, err
		}
		od, err := q.Col("lineorder", "lo_orderdate")
		if err != nil {
			return nil, err
		}
		price, err := q.Col("lineorder", "lo_extendedprice")
		if err != nil {
			return nil, err
		}
		rev, err := ops.FusedFilterSemiSumProduct([]ops.RangePred{
			{Col: disc, Lo: discLo, Hi: discHi},
			{Col: qty, Lo: qtyLo, Hi: qtyHi},
		}, od, dateHT, price, disc, q.Opts())
		if err != nil {
			return nil, err
		}
		return q.FinishScalar(rev)
	}
	return q1Tail(q, dateHT, discLo, discHi, qtyLo, qtyHi)
}

// q1FlightMaterialized is the operator-at-a-time Q1.x pipeline: every
// intermediate (selection vectors, gathered measure vectors) is
// materialized between operators.
func q1FlightMaterialized(q *exec.Query, datePreds []pred, discLo, discHi, qtyLo, qtyHi uint64) (*ops.Result, error) {
	dateHT, err := buildDim(q, "date", "d_datekey", datePreds)
	if err != nil {
		return nil, err
	}
	return q1Tail(q, dateHT, discLo, discHi, qtyLo, qtyHi)
}

// q1Tail is the materializing filter-semijoin-aggregate tail shared by
// the unfused path and the ContinuousReencoding variant.
func q1Tail(q *exec.Query, dateHT *hashmap.U64, discLo, discHi, qtyLo, qtyHi uint64) (*ops.Result, error) {
	sel, err := filterTable(q, "lineorder", []pred{
		{col: "lo_discount", lo: discLo, hi: discHi},
		{col: "lo_quantity", lo: qtyLo, hi: qtyHi},
	})
	if err != nil {
		return nil, err
	}
	od, err := q.Col("lineorder", "lo_orderdate")
	if err != nil {
		return nil, err
	}
	sel, err = ops.SemiJoin(od, dateHT, sel, q.Opts())
	if err != nil {
		return nil, err
	}
	price, err := gatherFact(q, "lo_extendedprice", sel)
	if err != nil {
		return nil, err
	}
	disc, err := gatherFact(q, "lo_discount", sel)
	if err != nil {
		return nil, err
	}
	price = q.PreAggregate(price)
	disc = q.PreAggregate(disc)
	rev, err := ops.SumProduct(price, disc, q.Opts())
	if err != nil {
		return nil, err
	}
	return q.FinishScalar(rev)
}

// Q11 is SSB Q1.1: revenue for 1993 orders with discount 1-3 and quantity
// below 25.
func Q11(q *exec.Query) (*ops.Result, error) {
	return q1Flight(q, []pred{{col: "d_year", lo: 1993, hi: 1993}}, 1, 3, 0, 24)
}

// Q12 is SSB Q1.2: January 1994, discount 4-6, quantity 26-35.
func Q12(q *exec.Query) (*ops.Result, error) {
	return q1Flight(q, []pred{{col: "d_yearmonthnum", lo: 199401, hi: 199401}}, 4, 6, 26, 35)
}

// Q13 is SSB Q1.3: week 6 of 1994, discount 5-7, quantity 26-35.
func Q13(q *exec.Query) (*ops.Result, error) {
	return q1Flight(q, []pred{
		{col: "d_weeknuminyear", lo: 6, hi: 6},
		{col: "d_year", lo: 1994, hi: 1994},
	}, 5, 7, 26, 35)
}

// Q11Materialized is Q1.1 forced through the operator-at-a-time pipeline
// regardless of mode - the baseline the fused-kernel benchmarks compare
// against.
func Q11Materialized(q *exec.Query) (*ops.Result, error) {
	return q1FlightMaterialized(q, []pred{{col: "d_year", lo: 1993, hi: 1993}}, 1, 3, 0, 24)
}

// Q12Materialized is the materializing Q1.2.
func Q12Materialized(q *exec.Query) (*ops.Result, error) {
	return q1FlightMaterialized(q, []pred{{col: "d_yearmonthnum", lo: 199401, hi: 199401}}, 4, 6, 26, 35)
}

// Q13Materialized is the materializing Q1.3.
func Q13Materialized(q *exec.Query) (*ops.Result, error) {
	return q1FlightMaterialized(q, []pred{
		{col: "d_weeknuminyear", lo: 6, hi: 6},
		{col: "d_year", lo: 1994, hi: 1994},
	}, 5, 7, 26, 35)
}

// groupSpec names one group attribute gathered through a dimension join.
type groupSpec struct {
	fkCol    string
	ht       *hashmap.U64
	dimTable string
	attr     string
}

// starGroupByFused runs the whole grouped tail as one fused pass over
// the fact table (ops.FusedProbeGroupSum / FusedProbeGroupSumDiff): the
// join cascade probes, the group ids assign and the measure accumulates
// block-at-a-time, with no materialized selection, match or value vector
// between the stages. measureB empty selects the plain sum; otherwise
// the Q4.x profit difference measure-measureB.
func starGroupByFused(q *exec.Query, joins []groupSpec, measure, measureB string) (*ops.Result, error) {
	fjs := make([]ops.FusedJoin, len(joins))
	for i, j := range joins {
		fk, err := q.Col("lineorder", j.fkCol)
		if err != nil {
			return nil, err
		}
		fjs[i] = ops.FusedJoin{FK: fk, HT: j.ht}
		if j.attr != "" {
			attr, err := q.Col(j.dimTable, j.attr)
			if err != nil {
				return nil, err
			}
			fjs[i].Attr = attr
		}
	}
	ma, err := q.Col("lineorder", measure)
	if err != nil {
		return nil, err
	}
	var groups [][]uint64
	var sums *ops.Vec
	if measureB == "" {
		groups, sums, err = ops.FusedProbeGroupSum(nil, fjs, ma, q.Opts())
	} else {
		mb, errB := q.Col("lineorder", measureB)
		if errB != nil {
			return nil, errB
		}
		groups, sums, err = ops.FusedProbeGroupSumDiff(nil, fjs, ma, mb, q.Opts())
	}
	if err != nil {
		return nil, err
	}
	return q.Finish(groups, sums)
}

// starGroupBy runs the shared tail of the grouped flights: semijoin the
// fact table against every dimension (sel nil means the whole fact
// table), gather the group attributes and the measure, group and sum.
// Without a precomputed fact selection the whole tail collapses into the
// fused probe cascade (all modes except ContinuousReencoding).
func starGroupBy(q *exec.Query, sel *ops.Sel, joins []groupSpec, measure string) (*ops.Result, error) {
	if sel == nil && q.FuseOperators() {
		return starGroupByFused(q, joins, measure, "")
	}
	var err error
	for _, j := range joins {
		fk, err := q.Col("lineorder", j.fkCol)
		if err != nil {
			return nil, err
		}
		sel, err = ops.SemiJoin(fk, j.ht, sel, q.Opts())
		if err != nil {
			return nil, err
		}
	}
	keys := make([]*ops.Vec, 0, len(joins))
	for _, j := range joins {
		if j.attr == "" {
			continue
		}
		vec, err := gatherDim(q, sel, "lineorder", j.fkCol, j.ht, j.dimTable, j.attr)
		if err != nil {
			return nil, err
		}
		keys = append(keys, q.PreAggregate(vec))
	}
	gids, groups, err := ops.GroupBy(keys, q.Opts())
	if err != nil {
		return nil, err
	}
	// Always materialize from here: this tail only runs when a prior
	// selection exists (the sel == nil fused case returned above), and
	// the fused grouped-sum kernels index gids by selection position -
	// a contract the gather cascade cannot uphold once a detected
	// corruption makes gatherDim drop an entry, shrinking keys (and
	// with them gids) out of alignment with sel. The materializing
	// gather keeps alignment by construction: a corrupted position
	// contributes zero and a log record instead of skewing its
	// neighbours' groups.
	meas, err := gatherFact(q, measure, sel)
	if err != nil {
		return nil, err
	}
	meas = q.PreAggregate(meas)
	sums, err := ops.SumGrouped(meas, gids, len(groups), q.Opts())
	if err != nil {
		return nil, err
	}
	return q.Finish(groups, sums)
}

// starGroupByProfit is starGroupBy with the Q4.x revenue-supplycost
// aggregate.
func starGroupByProfit(q *exec.Query, sel *ops.Sel, joins []groupSpec) (*ops.Result, error) {
	if sel == nil && q.FuseOperators() {
		return starGroupByFused(q, joins, "lo_revenue", "lo_supplycost")
	}
	var err error
	for _, j := range joins {
		fk, err := q.Col("lineorder", j.fkCol)
		if err != nil {
			return nil, err
		}
		sel, err = ops.SemiJoin(fk, j.ht, sel, q.Opts())
		if err != nil {
			return nil, err
		}
	}
	keys := make([]*ops.Vec, 0, len(joins))
	for _, j := range joins {
		if j.attr == "" {
			continue
		}
		vec, err := gatherDim(q, sel, "lineorder", j.fkCol, j.ht, j.dimTable, j.attr)
		if err != nil {
			return nil, err
		}
		keys = append(keys, q.PreAggregate(vec))
	}
	gids, groups, err := ops.GroupBy(keys, q.Opts())
	if err != nil {
		return nil, err
	}
	// Same materializing-only tail as starGroupBy: with a prior
	// selection, the fused diff kernel's gids-by-selection-index
	// contract breaks under detected corruption.
	rev, err := gatherFact(q, "lo_revenue", sel)
	if err != nil {
		return nil, err
	}
	cost, err := gatherFact(q, "lo_supplycost", sel)
	if err != nil {
		return nil, err
	}
	rev = q.PreAggregate(rev)
	cost = q.PreAggregate(cost)
	sums, err := ops.SumDiffGrouped(rev, cost, gids, len(groups), q.Opts())
	if err != nil {
		return nil, err
	}
	return q.Finish(groups, sums)
}

// q2Flight is the shared shape of Q2.x: a part filter, a supplier region
// filter, grouping by (d_year, p_brand1) over revenue.
func q2Flight(q *exec.Query, partPred pred, sRegion string) (*ops.Result, error) {
	partHT, err := buildDim(q, "part", "p_partkey", []pred{partPred})
	if err != nil {
		return nil, err
	}
	sPred, err := eqStr(q, "supplier", "s_region", sRegion)
	if err != nil {
		return nil, err
	}
	suppHT, err := buildDim(q, "supplier", "s_suppkey", []pred{sPred})
	if err != nil {
		return nil, err
	}
	dateSel, err := allRows(q, "date", "d_datekey")
	if err != nil {
		return nil, err
	}
	dateHT, err := buildDimSel(q, "date", "d_datekey", dateSel)
	if err != nil {
		return nil, err
	}
	return starGroupBy(q, nil, []groupSpec{
		{fkCol: "lo_partkey", ht: partHT, dimTable: "part", attr: "p_brand1"},
		{fkCol: "lo_suppkey", ht: suppHT},
		{fkCol: "lo_orderdate", ht: dateHT, dimTable: "date", attr: "d_year"},
	}, "lo_revenue")
}

// Q21 is SSB Q2.1: category MFGR#12, suppliers in AMERICA.
func Q21(q *exec.Query) (*ops.Result, error) {
	p, err := eqStr(q, "part", "p_category", "MFGR#12")
	if err != nil {
		return nil, err
	}
	return q2Flight(q, p, "AMERICA")
}

// Q22 is SSB Q2.2: brands MFGR#2221..MFGR#2228, suppliers in ASIA.
func Q22(q *exec.Query) (*ops.Result, error) {
	p, err := rangeStr(q, "part", "p_brand1", "MFGR#2221", "MFGR#2228")
	if err != nil {
		return nil, err
	}
	return q2Flight(q, p, "ASIA")
}

// Q23 is SSB Q2.3: brand MFGR#2239, suppliers in EUROPE.
func Q23(q *exec.Query) (*ops.Result, error) {
	p, err := eqStr(q, "part", "p_brand1", "MFGR#2239")
	if err != nil {
		return nil, err
	}
	return q2Flight(q, p, "EUROPE")
}

// q3Flight is the shared shape of Q3.x: customer and supplier filters, a
// date restriction, grouping by a customer attribute, a supplier
// attribute and d_year over revenue.
func q3Flight(q *exec.Query, custSel, suppSel *ops.Sel, datePreds []pred, custAttr, suppAttr string) (*ops.Result, error) {
	custHT, err := buildDimSel(q, "customer", "c_custkey", custSel)
	if err != nil {
		return nil, err
	}
	suppHT, err := buildDimSel(q, "supplier", "s_suppkey", suppSel)
	if err != nil {
		return nil, err
	}
	dateHT, err := buildDim(q, "date", "d_datekey", datePreds)
	if err != nil {
		return nil, err
	}
	return starGroupBy(q, nil, []groupSpec{
		{fkCol: "lo_custkey", ht: custHT, dimTable: "customer", attr: custAttr},
		{fkCol: "lo_suppkey", ht: suppHT, dimTable: "supplier", attr: suppAttr},
		{fkCol: "lo_orderdate", ht: dateHT, dimTable: "date", attr: "d_year"},
	}, "lo_revenue")
}

// Q31 is SSB Q3.1: ASIA-to-ASIA trade by nation pair and year, 1992-1997.
func Q31(q *exec.Query) (*ops.Result, error) {
	cPred, err := eqStr(q, "customer", "c_region", "ASIA")
	if err != nil {
		return nil, err
	}
	sPred, err := eqStr(q, "supplier", "s_region", "ASIA")
	if err != nil {
		return nil, err
	}
	custSel, err := filterTable(q, "customer", []pred{cPred})
	if err != nil {
		return nil, err
	}
	suppSel, err := filterTable(q, "supplier", []pred{sPred})
	if err != nil {
		return nil, err
	}
	return q3Flight(q, custSel, suppSel,
		[]pred{{col: "d_year", lo: 1992, hi: 1997}}, "c_nation", "s_nation")
}

// Q32 is SSB Q3.2: United States by city pair and year.
func Q32(q *exec.Query) (*ops.Result, error) {
	cPred, err := eqStr(q, "customer", "c_nation", "UNITED STATES")
	if err != nil {
		return nil, err
	}
	sPred, err := eqStr(q, "supplier", "s_nation", "UNITED STATES")
	if err != nil {
		return nil, err
	}
	custSel, err := filterTable(q, "customer", []pred{cPred})
	if err != nil {
		return nil, err
	}
	suppSel, err := filterTable(q, "supplier", []pred{sPred})
	if err != nil {
		return nil, err
	}
	return q3Flight(q, custSel, suppSel,
		[]pred{{col: "d_year", lo: 1992, hi: 1997}}, "c_city", "s_city")
}

var q33Cities = []string{cityOf("UNITED KINGDOM", 1), cityOf("UNITED KINGDOM", 5)}

// Q33 is SSB Q3.3: the UNITED KI1/UNITED KI5 city pairs, 1992-1997.
func Q33(q *exec.Query) (*ops.Result, error) {
	custSel, err := filterIn(q, "customer", "c_city", q33Cities)
	if err != nil {
		return nil, err
	}
	suppSel, err := filterIn(q, "supplier", "s_city", q33Cities)
	if err != nil {
		return nil, err
	}
	return q3Flight(q, custSel, suppSel,
		[]pred{{col: "d_year", lo: 1992, hi: 1997}}, "c_city", "s_city")
}

// Q34 is SSB Q3.4: the same city pairs in December 1997.
func Q34(q *exec.Query) (*ops.Result, error) {
	custSel, err := filterIn(q, "customer", "c_city", q33Cities)
	if err != nil {
		return nil, err
	}
	suppSel, err := filterIn(q, "supplier", "s_city", q33Cities)
	if err != nil {
		return nil, err
	}
	ymPred, err := eqStr(q, "date", "d_yearmonth", "Dec1997")
	if err != nil {
		return nil, err
	}
	return q3Flight(q, custSel, suppSel, []pred{ymPred}, "c_city", "s_city")
}

// Q41 is SSB Q4.1: America-to-America profit by year and customer nation,
// manufacturers MFGR#1 and MFGR#2.
func Q41(q *exec.Query) (*ops.Result, error) {
	cPred, err := eqStr(q, "customer", "c_region", "AMERICA")
	if err != nil {
		return nil, err
	}
	sPred, err := eqStr(q, "supplier", "s_region", "AMERICA")
	if err != nil {
		return nil, err
	}
	pPred, err := rangeStr(q, "part", "p_mfgr", "MFGR#1", "MFGR#2")
	if err != nil {
		return nil, err
	}
	custHT, err := buildDim(q, "customer", "c_custkey", []pred{cPred})
	if err != nil {
		return nil, err
	}
	suppHT, err := buildDim(q, "supplier", "s_suppkey", []pred{sPred})
	if err != nil {
		return nil, err
	}
	partHT, err := buildDim(q, "part", "p_partkey", []pred{pPred})
	if err != nil {
		return nil, err
	}
	dateSel, err := allRows(q, "date", "d_datekey")
	if err != nil {
		return nil, err
	}
	dateHT, err := buildDimSel(q, "date", "d_datekey", dateSel)
	if err != nil {
		return nil, err
	}
	return starGroupByProfit(q, nil, []groupSpec{
		{fkCol: "lo_custkey", ht: custHT, dimTable: "customer", attr: "c_nation"},
		{fkCol: "lo_suppkey", ht: suppHT},
		{fkCol: "lo_partkey", ht: partHT},
		{fkCol: "lo_orderdate", ht: dateHT, dimTable: "date", attr: "d_year"},
	})
}

// Q42 is SSB Q4.2: 1997-1998 profit by year, supplier nation and part
// category.
func Q42(q *exec.Query) (*ops.Result, error) {
	cPred, err := eqStr(q, "customer", "c_region", "AMERICA")
	if err != nil {
		return nil, err
	}
	sPred, err := eqStr(q, "supplier", "s_region", "AMERICA")
	if err != nil {
		return nil, err
	}
	pPred, err := rangeStr(q, "part", "p_mfgr", "MFGR#1", "MFGR#2")
	if err != nil {
		return nil, err
	}
	custHT, err := buildDim(q, "customer", "c_custkey", []pred{cPred})
	if err != nil {
		return nil, err
	}
	suppHT, err := buildDim(q, "supplier", "s_suppkey", []pred{sPred})
	if err != nil {
		return nil, err
	}
	partHT, err := buildDim(q, "part", "p_partkey", []pred{pPred})
	if err != nil {
		return nil, err
	}
	dateHT, err := buildDim(q, "date", "d_datekey", []pred{{col: "d_year", lo: 1997, hi: 1998}})
	if err != nil {
		return nil, err
	}
	return starGroupByProfit(q, nil, []groupSpec{
		{fkCol: "lo_custkey", ht: custHT},
		{fkCol: "lo_suppkey", ht: suppHT, dimTable: "supplier", attr: "s_nation"},
		{fkCol: "lo_partkey", ht: partHT, dimTable: "part", attr: "p_category"},
		{fkCol: "lo_orderdate", ht: dateHT, dimTable: "date", attr: "d_year"},
	})
}

// Q43 is SSB Q4.3: 1997-1998 United States suppliers in category MFGR#14,
// profit by year, supplier city and brand.
func Q43(q *exec.Query) (*ops.Result, error) {
	cPred, err := eqStr(q, "customer", "c_region", "AMERICA")
	if err != nil {
		return nil, err
	}
	sPred, err := eqStr(q, "supplier", "s_nation", "UNITED STATES")
	if err != nil {
		return nil, err
	}
	pPred, err := eqStr(q, "part", "p_category", "MFGR#14")
	if err != nil {
		return nil, err
	}
	custHT, err := buildDim(q, "customer", "c_custkey", []pred{cPred})
	if err != nil {
		return nil, err
	}
	suppHT, err := buildDim(q, "supplier", "s_suppkey", []pred{sPred})
	if err != nil {
		return nil, err
	}
	partHT, err := buildDim(q, "part", "p_partkey", []pred{pPred})
	if err != nil {
		return nil, err
	}
	dateHT, err := buildDim(q, "date", "d_datekey", []pred{{col: "d_year", lo: 1997, hi: 1998}})
	if err != nil {
		return nil, err
	}
	return starGroupByProfit(q, nil, []groupSpec{
		{fkCol: "lo_custkey", ht: custHT},
		{fkCol: "lo_suppkey", ht: suppHT, dimTable: "supplier", attr: "s_city"},
		{fkCol: "lo_partkey", ht: partHT, dimTable: "part", attr: "p_brand1"},
		{fkCol: "lo_orderdate", ht: dateHT, dimTable: "date", attr: "d_year"},
	})
}
