package ssb

import (
	"fmt"
	"io"

	"ahead/internal/exec"
	"ahead/internal/faults"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// SoakConfig parameterizes an injection soak: all 13 SSB queries run
// under supervised recovery while transient faults are injected into the
// hardened base data before every query.
type SoakConfig struct {
	Mode       exec.Mode  // detection variant; must read hardened data
	Flavor     ops.Flavor // kernel flavor (zero value = Scalar)
	Flips      int        // flips injected before each query (default 8)
	Seed       int64      // injector seed
	MaxRetries int        // recovery retry budget (default exec.DefaultMaxRetries)
}

// SoakQueryResult is one query's outcome under the soak.
type SoakQueryResult struct {
	Query    string
	Column   string // column injected before this query
	Injected int
	Attempts int
	Repaired int // distinct positions repaired during recovery
	ResultOK bool
	Report   *exec.RecoveryReport
}

// soakTargets returns the hardened lineorder columns eligible for
// injection plus the flip weight that stays within each code's published
// detection guarantee (weight 2 up to 32 data bits, single flips for the
// wide heap-reference codes - any AN code detects ±2^i).
func (s *Suite) soakTargets() (cols []*storage.Column, weights []int) {
	for _, c := range s.DB.Hardened("lineorder").Columns() {
		code := c.Code()
		if code == nil {
			continue
		}
		w := 2
		if code.DataBits() > 32 {
			w = 1
		}
		cols = append(cols, c)
		weights = append(weights, w)
	}
	return cols, weights
}

// SoakRecovery runs the injection soak: for every query it computes the
// fault-free reference, injects cfg.Flips transient flips into one
// hardened lineorder column (round-robin over all hardened columns, so
// the 13 queries cover every width class and code), executes the query
// via exec.RunWithRecovery on the suite's pool, and verifies the
// recovered result against the reference. Faults in columns a query does
// not touch stay latent until a later query - or the final Scrub, whose
// repair count is returned - picks them up; either way every query must
// come back with the fault-free answer.
func (s *Suite) SoakRecovery(cfg SoakConfig) ([]SoakQueryResult, int, error) {
	if cfg.Flips <= 0 {
		cfg.Flips = 8
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = exec.DefaultMaxRetries
	}
	if !cfg.Mode.UsesHardenedData() {
		return nil, 0, fmt.Errorf("ssb: soak needs a hardened detection mode, got %v", cfg.Mode)
	}

	// Fault-free references first: injection below corrupts the hardened
	// tables, and repairs trickle in query by query.
	refs := make(map[string]*ops.Result, len(QueryNames))
	for _, q := range QueryNames {
		r, _, err := s.Run(q, cfg.Mode, cfg.Flavor)
		if err != nil {
			return nil, 0, fmt.Errorf("ssb: fault-free reference for %s: %w", q, err)
		}
		refs[q] = r
	}

	cols, weights := s.soakTargets()
	inj := faults.NewInjector(cfg.Seed)
	recOpts := []exec.RecoveryOption{exec.WithMaxRetries(cfg.MaxRetries)}
	if runOpts := s.runOpts(); len(runOpts) > 0 {
		recOpts = append(recOpts, exec.WithRecoveryRunOptions(runOpts...))
	}

	var out []SoakQueryResult
	for i, q := range QueryNames {
		col, weight := cols[i%len(cols)], weights[i%len(cols)]
		injected, err := inj.FlipRandom(col, cfg.Flips, weight)
		if err != nil {
			return out, 0, fmt.Errorf("ssb: injecting into %s before %s: %w", col.Name(), q, err)
		}
		res, rep, err := exec.RunWithRecovery(s.DB, cfg.Mode, cfg.Flavor, Queries[q], recOpts...)
		r := SoakQueryResult{
			Query:    q,
			Column:   col.Name(),
			Injected: len(injected),
			Report:   rep,
			Attempts: rep.Attempts,
			Repaired: rep.RepairedCount(),
		}
		if err != nil {
			out = append(out, r)
			return out, 0, fmt.Errorf("ssb: %s under recovery: %w", q, err)
		}
		r.ResultOK = res.Equal(refs[q])
		out = append(out, r)
	}

	// Sweep the latent corruption queries never touched.
	scrubbed, err := s.DB.Scrub()
	if err != nil {
		return out, 0, fmt.Errorf("ssb: final scrub: %w", err)
	}
	total := 0
	for _, n := range scrubbed {
		total += n
	}
	return out, total, nil
}

// PrintSoakTable renders the soak outcome, one row per query.
func PrintSoakTable(w io.Writer, results []SoakQueryResult, scrubbed int) {
	fmt.Fprintf(w, "%-6s %-18s %9s %9s %9s %7s\n",
		"query", "injected column", "flips", "attempts", "repaired", "result")
	for _, r := range results {
		verdict := "OK"
		if !r.ResultOK {
			verdict = "WRONG"
		}
		fmt.Fprintf(w, "%-6s %-18s %9d %9d %9d %7s\n",
			r.Query, r.Column, r.Injected, r.Attempts, r.Repaired, verdict)
	}
	fmt.Fprintf(w, "final scrub repaired %d latent positions\n", scrubbed)
}
