package ssb

import (
	"testing"

	"ahead/internal/exec"
	"ahead/internal/faults"
	"ahead/internal/ops"
)

// TestSoakRecoveryAllQueries runs the full injection soak: all 13 SSB
// queries under supervised recovery with transient flips injected before
// every query. Every query must come back with the fault-free answer,
// and every injected flip must be accounted for - repaired during
// recovery or swept by the final scrub.
func TestSoakRecoveryAllQueries(t *testing.T) {
	suite, _, err := NewSuite(0.005, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer suite.Close()
	const flips = 5
	results, scrubbed, err := suite.SoakRecovery(SoakConfig{
		Mode:   exec.Continuous,
		Flavor: ops.Blocked,
		Flips:  flips,
		Seed:   42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(QueryNames) {
		t.Fatalf("soaked %d queries, want %d", len(results), len(QueryNames))
	}
	totalRepaired := 0
	for _, r := range results {
		if !r.ResultOK {
			t.Errorf("%s: recovered result differs from the fault-free reference (injected %s, report %v)",
				r.Query, r.Column, r.Report)
		}
		if r.Attempts < 1 || r.Injected != flips {
			t.Errorf("%s: odd accounting %+v", r.Query, r)
		}
		totalRepaired += r.Repaired
	}
	if got, want := totalRepaired+scrubbed, flips*len(QueryNames); got != want {
		t.Fatalf("accounted for %d flips (%d repaired + %d scrubbed), injected %d",
			got, totalRepaired, scrubbed, want)
	}
	if totalRepaired == 0 {
		t.Fatal("soak never exercised the repair path")
	}
	if q := suite.DB.QuarantinedColumns(); len(q) != 0 {
		t.Fatalf("transient soak must not quarantine, got %v", q)
	}
}

// TestSoakRecoverySerialParallelEquivalence is the PR 1 equivalence
// invariant extended through the recovery loop: identical injections into
// identical data must produce identical RecoveryReports - attempts,
// repaired positions per column, escalations - whether each attempt runs
// serially or morsel-parallel.
func TestSoakRecoverySerialParallelEquivalence(t *testing.T) {
	cfg := SoakConfig{Mode: exec.Continuous, Flavor: ops.Blocked, Flips: 4, Seed: 7}
	run := func(workers int) ([]SoakQueryResult, int) {
		t.Helper()
		suite, _, err := NewSuite(0.005, 11, 1)
		if err != nil {
			t.Fatal(err)
		}
		defer suite.Close()
		if workers != 1 {
			suite.WithParallelism(workers)
		}
		results, scrubbed, err := suite.SoakRecovery(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return results, scrubbed
	}
	serial, sScrub := run(1)
	parallel, pScrub := run(4)
	if sScrub != pScrub {
		t.Fatalf("scrub sweep diverges: %d serial vs %d parallel", sScrub, pScrub)
	}
	for i, s := range serial {
		p := parallel[i]
		if s.Query != p.Query || s.Column != p.Column || s.Injected != p.Injected ||
			s.Attempts != p.Attempts || s.Repaired != p.Repaired || s.ResultOK != p.ResultOK {
			t.Fatalf("%s: soak rows diverge:\nserial:   %+v\nparallel: %+v", s.Query, s, p)
		}
		if !s.Report.Equal(p.Report) {
			t.Fatalf("%s: recovery reports diverge:\nserial:   %v\nparallel: %v", s.Query, s.Report, p.Report)
		}
	}
}

// TestRecoveryStuckAtOnSSBData drives the escalation path on real SSB
// data and a real query plan: a stuck-at fault in the part foreign key
// exhausts the budget under Q2.1, quarantines lo_partkey, and the
// degraded DMR fallback still returns the fault-free answer - serial and
// parallel alike.
func TestRecoveryStuckAtOnSSBData(t *testing.T) {
	for _, workers := range []int{1, 4} {
		suite, _, err := NewSuite(0.005, 11, 1)
		if err != nil {
			t.Fatal(err)
		}
		if workers != 1 {
			suite.WithParallelism(workers)
		}
		ref, _, err := suite.Run("Q2.1", exec.Continuous, ops.Blocked)
		if err != nil {
			t.Fatal(err)
		}

		fk := suite.DB.Hardened("lineorder").MustColumn("lo_partkey")
		set := faults.NewStuckSet()
		if _, err := set.StickAt(faults.NewInjector(3), fk, 100, 2); err != nil {
			t.Fatal(err)
		}
		recOpts := []exec.RecoveryOption{
			exec.WithReassert(func() { set.Reassert() }),
			exec.WithDegradedFallback(true),
		}
		if workers != 1 {
			recOpts = append(recOpts, exec.WithRecoveryRunOptions(exec.WithPool(suite.Pool())))
		}
		res, rep, err := exec.RunWithRecovery(suite.DB, exec.Continuous, ops.Blocked, Queries["Q2.1"], recOpts...)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if rep.Attempts != 1+exec.DefaultMaxRetries || !rep.Degraded || rep.FinalMode != exec.DMR {
			t.Fatalf("workers=%d: report %v", workers, rep)
		}
		if !suite.DB.IsQuarantined("lo_partkey") {
			t.Fatalf("workers=%d: lo_partkey not quarantined", workers)
		}
		if !res.Equal(ref) {
			t.Fatalf("workers=%d: degraded result differs from fault-free answer", workers)
		}
		suite.Close()
	}
}
