package ssb

import (
	"testing"

	"ahead/internal/exec"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

func genSmall(t *testing.T) *Data {
	t.Helper()
	d, err := Generate(0.005, 42)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func smallDB(t *testing.T) *exec.DB {
	t.Helper()
	d := genSmall(t)
	db, err := exec.NewDB(d.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestGenerateCardinalities(t *testing.T) {
	d := genSmall(t)
	rows := d.Rows()
	// Seven calendar years 1992-1998 with the 1992 and 1996 leap days;
	// dbgen's nominal 2556 omits one day.
	if rows["date"] != 2557 {
		t.Errorf("date rows = %d, want 2557 (7 years)", rows["date"])
	}
	if rows["lineorder"] != 30000 {
		t.Errorf("lineorder rows = %d, want 30000", rows["lineorder"])
	}
	if rows["customer"] != 150 || rows["supplier"] != 50 {
		t.Errorf("customer/supplier rows = %d/%d", rows["customer"], rows["supplier"])
	}
	// Dictionaries have the SSB cardinalities.
	if n := d.Customer.MustColumn("c_region").Dict().Size(); n != 5 {
		t.Errorf("c_region dictionary size %d, want 5", n)
	}
	if n := d.Customer.MustColumn("c_nation").Dict().Size(); n > 25 {
		t.Errorf("c_nation dictionary size %d, want <= 25", n)
	}
	if n := d.Part.MustColumn("p_mfgr").Dict().Size(); n != 5 {
		t.Errorf("p_mfgr dictionary size %d, want 5", n)
	}
	if n := d.Part.MustColumn("p_category").Dict().Size(); n != 25 {
		t.Errorf("p_category dictionary size %d, want 25", n)
	}
	if n := d.Part.MustColumn("p_brand1").Dict().Size(); n > 1000 {
		t.Errorf("p_brand1 dictionary size %d, want <= 1000", n)
	}
	// Value invariants the queries rely on.
	rev := d.Lineorder.MustColumn("lo_revenue")
	cost := d.Lineorder.MustColumn("lo_supplycost")
	price := d.Lineorder.MustColumn("lo_extendedprice")
	disc := d.Lineorder.MustColumn("lo_discount")
	qty := d.Lineorder.MustColumn("lo_quantity")
	for i := 0; i < rev.Len(); i++ {
		if rev.Get(i) < cost.Get(i) {
			t.Fatalf("row %d: revenue %d < supplycost %d", i, rev.Get(i), cost.Get(i))
		}
		if disc.Get(i) > 10 {
			t.Fatalf("row %d: discount %d > 10", i, disc.Get(i))
		}
		if q := qty.Get(i); q < 1 || q > 50 {
			t.Fatalf("row %d: quantity %d", i, q)
		}
		if price.Get(i) >= 1<<32 {
			t.Fatalf("row %d: extendedprice overflows int", i)
		}
	}
	// Deterministic regeneration.
	d2, err := Generate(0.005, 42)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Lineorder.MustColumn("lo_revenue").Get(100) != rev.Get(100) {
		t.Error("generation is not deterministic")
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(0, 1); err == nil {
		t.Error("zero scale factor must error")
	}
	if _, err := Generate(-1, 1); err == nil {
		t.Error("negative scale factor must error")
	}
}

func TestCityNames(t *testing.T) {
	if got := cityOf("UNITED KINGDOM", 1); got != "UNITED KI1" {
		t.Errorf("cityOf = %q, want UNITED KI1", got)
	}
	if got := cityOf("UNITED STATES", 4); got != "UNITED ST4" {
		t.Errorf("cityOf = %q", got)
	}
	if got := cityOf("CHINA", 0); got != "CHINA    0" {
		t.Errorf("cityOf(CHINA) = %q (padding)", got)
	}
}

// TestAllQueriesAgreeAcrossModes is the core equivalence property of the
// reproduction: without induced faults, every SSB query returns the exact
// same result under all six detection variants and both kernel flavors.
func TestAllQueriesAgreeAcrossModes(t *testing.T) {
	db := smallDB(t)
	nonEmpty := 0
	for _, name := range QueryNames {
		plan := Queries[name]
		ref, log, err := exec.Run(db, exec.Unprotected, ops.Scalar, plan)
		if err != nil {
			t.Fatalf("%s unprotected: %v", name, err)
		}
		if log.Count() != 0 {
			t.Fatalf("%s: unprotected run logged errors", name)
		}
		if ref.Rows() > 0 && ref.Aggs[0] != 0 {
			nonEmpty++
		}
		for _, mode := range exec.Modes {
			for _, fl := range []ops.Flavor{ops.Scalar, ops.Blocked} {
				got, log, err := exec.Run(db, mode, fl, plan)
				if err != nil {
					t.Fatalf("%s %v/%v: %v", name, mode, fl, err)
				}
				if log.Count() != 0 {
					t.Fatalf("%s %v/%v: logged %d errors on clean data", name, mode, fl, log.Count())
				}
				if !ref.Equal(got) {
					t.Fatalf("%s %v/%v: result differs from unprotected (rows %d vs %d)",
						name, mode, fl, got.Rows(), ref.Rows())
				}
			}
		}
	}
	if nonEmpty < 8 {
		t.Errorf("only %d queries returned data; generator selectivities look wrong", nonEmpty)
	}
}

// TestQ11MatchesNaiveEvaluation cross-checks the Q1.1 plan against a
// direct row-at-a-time evaluation of the SQL semantics.
func TestQ11MatchesNaiveEvaluation(t *testing.T) {
	d := genSmall(t)
	db, err := exec.NewDB(d.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	// Naive: sum(extendedprice*discount) where d_year(orderdate)=1993,
	// discount in [1,3], quantity in [0,24].
	want := uint64(0)
	lo := d.Lineorder
	price := lo.MustColumn("lo_extendedprice")
	disc := lo.MustColumn("lo_discount")
	qty := lo.MustColumn("lo_quantity")
	od := lo.MustColumn("lo_orderdate")
	for i := 0; i < lo.Rows(); i++ {
		if disc.Get(i) >= 1 && disc.Get(i) <= 3 && qty.Get(i) <= 24 && od.Get(i)/10000 == 1993 {
			want += price.Get(i) * disc.Get(i)
		}
	}
	res, _, err := exec.Run(db, exec.Continuous, ops.Scalar, Q11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != 1 || res.Aggs[0] != want {
		t.Fatalf("Q1.1 = %v, want %d", res.Aggs, want)
	}
}

// TestQ21MatchesNaiveEvaluation cross-checks a grouped plan the same way.
func TestQ21MatchesNaiveEvaluation(t *testing.T) {
	d := genSmall(t)
	db, err := exec.NewDB(d.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	catDict := d.Part.MustColumn("p_category").Dict()
	mfgr12, _ := catDict.Code("MFGR#12")
	regDict := d.Supplier.MustColumn("s_region").Dict()
	america, _ := regDict.Code("AMERICA")

	type key struct{ year, brand uint64 }
	want := map[key]uint64{}
	lo := d.Lineorder
	rev := lo.MustColumn("lo_revenue")
	pk := lo.MustColumn("lo_partkey")
	sk := lo.MustColumn("lo_suppkey")
	od := lo.MustColumn("lo_orderdate")
	pcat := d.Part.MustColumn("p_category")
	pbrand := d.Part.MustColumn("p_brand1")
	sreg := d.Supplier.MustColumn("s_region")
	for i := 0; i < lo.Rows(); i++ {
		p := int(pk.Get(i)) - 1
		s := int(sk.Get(i)) - 1
		if pcat.Get(p) != uint64(mfgr12) || sreg.Get(s) != uint64(america) {
			continue
		}
		k := key{od.Get(i) / 10000, pbrand.Get(p)}
		want[k] += rev.Get(i)
	}
	res, _, err := exec.Run(db, exec.Continuous, ops.Blocked, Q21)
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows() != len(want) {
		t.Fatalf("Q2.1 groups = %d, want %d", res.Rows(), len(want))
	}
	for i := range res.Keys {
		k := key{res.Keys[i][1], res.Keys[i][0]} // keys are (brand, year) per plan order
		if want[k] != res.Aggs[i] {
			t.Fatalf("group %v: %d, want %d", res.Keys[i], res.Aggs[i], want[k])
		}
	}
}

// TestDMRVoterCatchesReplicaDivergence corrupts one replica; the plain
// runs cannot notice per value, but the voter flags the divergence at the
// end - DMR's only detection point (Section 1).
func TestDMRVoterCatchesReplicaDivergence(t *testing.T) {
	d := genSmall(t)
	db, err := exec.NewDB(d.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit in every replica revenue value: whichever rows qualify
	// for Q2.1, the two replica results must diverge.
	rev := db.Replica("lineorder").MustColumn("lo_revenue")
	for i := 0; i < rev.Len(); i++ {
		rev.Corrupt(i, 1<<20)
	}
	_, _, err = exec.Run(db, exec.DMR, ops.Scalar, Q21)
	if err == nil {
		t.Fatal("DMR voter must flag diverging results")
	}
}

func TestStorageBytesPerMode(t *testing.T) {
	db := smallDB(t)
	unp := db.StorageBytes(exec.Unprotected)
	dmr := db.StorageBytes(exec.DMR)
	ahead := db.StorageBytes(exec.Continuous)
	if dmr != 2*unp {
		t.Errorf("DMR storage %d, want 2x unprotected %d", dmr, unp)
	}
	ratio := float64(ahead) / float64(unp)
	// Figure 1b: AHEAD needs ~1.5x against DMR's 2x. With shared
	// dictionaries the data arrays double but the heap does not.
	if ratio <= 1.0 || ratio > 2.1 {
		t.Errorf("AHEAD storage ratio %.2f out of plausible range", ratio)
	}
	if ahead >= dmr {
		t.Errorf("AHEAD storage %d must undercut DMR %d", ahead, dmr)
	}
}
