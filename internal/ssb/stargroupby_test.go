package ssb

import (
	"testing"

	"ahead/internal/exec"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// selThenGroupBy is the plan shape that used to be mis-planned: a fact
// selection computed before the grouped star tail. starGroupBy must
// take the materializing path here - the fused grouped-sum kernels
// index group ids by selection position, a contract that breaks once a
// detected corruption shrinks the gathered key vectors.
func selThenGroupBy(q *exec.Query) (*ops.Result, error) {
	sel, err := filterTable(q, "lineorder", []pred{{col: "lo_discount", lo: 1, hi: 3}})
	if err != nil {
		return nil, err
	}
	dateHT, err := buildDim(q, "date", "d_datekey", []pred{{col: "d_year", lo: 1993, hi: 1994}})
	if err != nil {
		return nil, err
	}
	return starGroupBy(q, sel, []groupSpec{
		{fkCol: "lo_orderdate", ht: dateHT, dimTable: "date", attr: "d_year"},
	}, "lo_revenue")
}

// selThenGroupByProfit is the same shape over the Q4.x profit tail.
func selThenGroupByProfit(q *exec.Query) (*ops.Result, error) {
	sel, err := filterTable(q, "lineorder", []pred{{col: "lo_quantity", lo: 0, hi: 24}})
	if err != nil {
		return nil, err
	}
	dateHT, err := buildDim(q, "date", "d_datekey", []pred{{col: "d_year", lo: 1993, hi: 1994}})
	if err != nil {
		return nil, err
	}
	return starGroupByProfit(q, sel, []groupSpec{
		{fkCol: "lo_orderdate", ht: dateHT, dimTable: "date", attr: "d_year"},
	})
}

// TestSelectionThenGroupBy runs both selection-then-group-by shapes
// under every hardened mode x {fused, materializing} x {serial,
// pooled} and requires the unprotected reference result exactly, with
// nothing logged on clean data. Before starGroupBy always materialized
// its tail for precomputed selections, the fused configurations ran a
// kernel whose alignment contract does not survive detected
// corruption.
func TestSelectionThenGroupBy(t *testing.T) {
	data, err := Generate(0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	pool := exec.NewPool(4)
	defer pool.Close()

	plans := map[string]exec.QueryFunc{
		"sel+groupby": selThenGroupBy,
		"sel+profit":  selThenGroupByProfit,
	}
	for name, plan := range plans {
		ref, _, err := exec.Run(db, exec.Unprotected, ops.Blocked, plan)
		if err != nil {
			t.Fatalf("%s unprotected: %v", name, err)
		}
		if ref.Rows() == 0 {
			t.Fatalf("%s: empty reference result; test is vacuous", name)
		}
		for _, mode := range diffModes {
			for _, fused := range []bool{true, false} {
				for _, pooled := range []bool{false, true} {
					opts := []exec.RunOption{exec.WithFusion(fused)}
					if pooled {
						opts = append(opts, exec.WithPool(pool))
					}
					got, log, err := exec.Run(db, mode, ops.Blocked, plan, opts...)
					if err != nil {
						t.Fatalf("%s %v fused=%v pooled=%v: %v", name, mode, fused, pooled, err)
					}
					if !ref.Equal(got) {
						t.Fatalf("%s %v fused=%v pooled=%v diverges: %s",
							name, mode, fused, pooled, firstDivergence(ref, got))
					}
					if log.Count() != 0 {
						t.Fatalf("%s %v fused=%v pooled=%v: %d errors logged on clean data",
							name, mode, fused, pooled, log.Count())
					}
				}
			}
		}
	}
}

// TestSelectionThenGroupByFaults corrupts the measure columns and
// requires the selection-then-group-by tail to detect and soften -
// never to fail - under Continuous, fused and materializing alike.
func TestSelectionThenGroupByFaults(t *testing.T) {
	data, err := Generate(0.01, 7)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{"lo_revenue", "lo_supplycost"} {
		c := db.Hardened("lineorder").MustColumn(col)
		for i := 10; i < c.Len(); i += 211 {
			c.Corrupt(i, 1<<9)
		}
	}
	plans := map[string]exec.QueryFunc{
		"sel+groupby": selThenGroupBy,
		"sel+profit":  selThenGroupByProfit,
	}
	for name, plan := range plans {
		for _, fused := range []bool{true, false} {
			_, log, err := exec.Run(db, exec.Continuous, ops.Blocked, plan, exec.WithFusion(fused))
			if err != nil {
				t.Fatalf("%s fused=%v: corrupted run must soften, got error: %v", name, fused, err)
			}
			if log.Count() == 0 {
				t.Fatalf("%s fused=%v: corruption went undetected", name, fused)
			}
		}
	}
}
