package ssb

import (
	"fmt"
	"math/rand"
	"testing"

	"ahead/internal/exec"
	"ahead/internal/faults"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// Structure-aware differential fuzzing: instead of mutating bytes, the
// fuzzer draws a random star schema (one fact table plus dimension
// tables, random kinds and row counts), a set of random ad-hoc queries
// over it, and a fault campaign whose flip weights stay within each
// code's published detection guarantee. The properties are the same
// ones the hand-written SSB differential suite pins, but quantified
// over arbitrary schemas:
//
//  1. On clean data every hardened mode x {serial, pooled} x {fused,
//     materializing} reproduces the unprotected reference exactly with
//     empty error logs.
//  2. Under in-guarantee faults every configuration detects-or-rejects:
//     a result that differs from the reference must come with a
//     non-empty error log (silent wrong answers are the one forbidden
//     outcome), and serial and pooled runs agree on both result and
//     log.
//  3. Supervised recovery returns the exact reference result.

// structKinds are the column kinds the schema generator draws from -
// all four width classes, so every published code family is exercised.
var structKinds = []storage.Kind{storage.TinyInt, storage.ShortInt, storage.Int, storage.BigInt}

// structValueBits caps generated values: key-ish columns (index 0 and
// 1) stay low-cardinality so group-bys have realistic shapes, measures
// stay within 16 bits so sums and products cannot overflow the
// aggregate domain even after AN re-encoding.
func structValueBits(kind storage.Kind, colIdx int) uint {
	bits := kind.DataBits()
	cap := uint(16)
	if colIdx < 2 {
		cap = 4
	}
	if bits > cap {
		bits = cap
	}
	return bits
}

// buildStructSchema draws the random star schema: table 0 is the fact
// table, the rest are dimensions with fewer rows.
func buildStructSchema(rng *rand.Rand) ([]*storage.Table, error) {
	nTables := 1 + rng.Intn(3)
	tables := make([]*storage.Table, 0, nTables)
	for ti := 0; ti < nTables; ti++ {
		name := fmt.Sprintf("t%d", ti)
		rows := 8 + rng.Intn(56)
		if ti == 0 {
			rows = 64 + rng.Intn(192)
		}
		tab := storage.NewTable(name)
		nCols := 2 + rng.Intn(3)
		for ci := 0; ci < nCols; ci++ {
			kind := structKinds[rng.Intn(len(structKinds))]
			// Column names are globally unique: quarantine and repair
			// bookkeeping key on bare column names.
			col, err := storage.NewColumn(fmt.Sprintf("%s_c%d", name, ci), kind)
			if err != nil {
				return nil, err
			}
			mask := uint64(1)<<structValueBits(kind, ci) - 1
			for r := 0; r < rows; r++ {
				col.Append(rng.Uint64() & mask)
			}
			if err := tab.AddColumn(col); err != nil {
				return nil, err
			}
		}
		tables = append(tables, tab)
	}
	return tables, nil
}

// randomStructSpec draws one valid ad-hoc spec over the table. Validity
// is by construction: CompileAdHoc failing on a generated spec is a
// generator bug the property check turns into a test failure.
func randomStructSpec(rng *rand.Rand, tab *storage.Table) AdHocSpec {
	cols := tab.Columns()
	pick := func() string { return cols[rng.Intn(len(cols))].Name() }
	spec := AdHocSpec{Table: tab.Name()}
	for i := rng.Intn(3); i > 0; i-- {
		a, b := rng.Uint64()&0xFFFF, rng.Uint64()&0xFFFF
		// Mostly ordered ranges; occasionally inverted (selects nothing)
		// or equality, both legal spec shapes.
		switch rng.Intn(8) {
		case 0:
			a, b = b, a
		case 1:
			b = a
		default:
			if a > b {
				a, b = b, a
			}
		}
		spec.Preds = append(spec.Preds, AdHocPred{Col: pick(), Lo: a, Hi: b})
	}
	for i := rng.Intn(3); i > 0; i-- {
		g := pick()
		dup := false
		for _, have := range spec.GroupBy {
			dup = dup || have == g
		}
		if !dup {
			spec.GroupBy = append(spec.GroupBy, g)
		}
	}
	switch rng.Intn(3) {
	case 0:
		spec.Agg = "count"
	case 1:
		spec.Agg = "sum"
		spec.AggCol = pick()
	default:
		if len(spec.GroupBy) > 0 {
			spec.Agg = "sum"
			spec.AggCol = pick()
		} else {
			spec.Agg = "sumproduct"
			spec.AggCol, spec.AggCol2 = pick(), pick()
		}
	}
	return spec
}

// structFaultTargets mirrors soakTargets over every table of the
// random schema: each hardened column is eligible, with the flip
// weight its code's published guarantee covers (weight 2 up to 32 data
// bits, single flips for the wide codes).
func structFaultTargets(db *exec.DB) (cols []*storage.Column, weights []int) {
	for _, name := range db.Tables() {
		for _, c := range db.Hardened(name).Columns() {
			code := c.Code()
			if code == nil {
				continue
			}
			w := 2
			if code.DataBits() > 32 {
				w = 1
			}
			cols = append(cols, c)
			weights = append(weights, w)
		}
	}
	return cols, weights
}

// structPlan is one compiled spec plus its fault-free reference.
type structPlan struct {
	spec AdHocSpec
	plan exec.QueryFunc
	ref  *ops.Result
}

// structDifferentialProperty is the whole property, shared by the
// deterministic test and the native fuzz target: build the schema from
// seed, check the clean differential matrix, inject in-guarantee
// faults from faultSeed, check detect-or-reject plus serial/pooled
// agreement, recover, and verify the data ends fully healed.
func structDifferentialProperty(t *testing.T, seed, faultSeed int64, flips int) {
	rng := rand.New(rand.NewSource(seed))
	tables, err := buildStructSchema(rng)
	if err != nil {
		t.Fatalf("seed %d: build schema: %v", seed, err)
	}
	db, err := exec.NewDB(tables, storage.LargestCodeChooser)
	if err != nil {
		t.Fatalf("seed %d: harden schema: %v", seed, err)
	}
	pool := exec.NewPool(2)
	defer pool.Close()

	var plans []structPlan
	for _, tab := range tables {
		n := 1
		if tab == tables[0] {
			n = 2 // the fact table gets an extra query, like real workloads
		}
		for i := 0; i < n; i++ {
			spec := randomStructSpec(rng, tab)
			plan, err := CompileAdHoc(db, spec)
			if err != nil {
				t.Fatalf("seed %d: generated spec %+v does not compile: %v", seed, spec, err)
			}
			ref, _, err := exec.Run(db, exec.Unprotected, ops.Blocked, plan)
			if err != nil {
				t.Fatalf("seed %d: unprotected reference for %+v: %v", seed, spec, err)
			}
			plans = append(plans, structPlan{spec: spec, plan: plan, ref: ref})
		}
	}

	// Property 1: clean data, full differential matrix.
	for _, p := range plans {
		for _, mode := range diffModes {
			for _, fused := range []bool{true, false} {
				var logs [2]*ops.ErrorLog
				for i, pooled := range []bool{false, true} {
					opts := []exec.RunOption{exec.WithFusion(fused)}
					if pooled {
						opts = append(opts, exec.WithPool(pool))
					}
					got, log, err := exec.Run(db, mode, ops.Blocked, p.plan, opts...)
					if err != nil {
						t.Fatalf("seed %d: %+v %v fused=%v pooled=%v: %v", seed, p.spec, mode, fused, pooled, err)
					}
					if !p.ref.Equal(got) {
						t.Fatalf("seed %d: %+v %v fused=%v pooled=%v diverges on clean data: %s",
							seed, p.spec, mode, fused, pooled, firstDivergence(p.ref, got))
					}
					if log.Count() != 0 {
						t.Fatalf("seed %d: %+v %v: %d errors logged on clean data", seed, p.spec, mode, log.Count())
					}
					logs[i] = log
				}
				if !logs[0].Equal(logs[1]) {
					t.Fatalf("seed %d: %+v %v fused=%v: serial and pooled logs differ", seed, p.spec, mode, fused)
				}
			}
		}
	}

	// Fault campaign: in-guarantee flips into up to two random hardened
	// columns. The unprotected references stay valid - injection only
	// touches the hardened replicas.
	cols, weights := structFaultTargets(db)
	if len(cols) == 0 {
		t.Fatalf("seed %d: schema has no hardened columns", seed)
	}
	inj := faults.NewInjector(faultSeed)
	if flips < 1 {
		flips = 1
	}
	if flips > 6 {
		flips = 6
	}
	for n := 1 + rng.Intn(2); n > 0; n-- {
		i := rng.Intn(len(cols))
		count := flips
		if count > cols[i].Len() {
			count = cols[i].Len()
		}
		if _, err := inj.FlipRandom(cols[i], count, weights[i]); err != nil {
			t.Fatalf("seed %d: injecting into %s: %v", seed, cols[i].Name(), err)
		}
	}

	// Property 2: detect-or-reject, serial == pooled.
	for _, p := range plans {
		for _, mode := range diffModes {
			var results [2]*ops.Result
			var logs [2]*ops.ErrorLog
			var errs [2]error
			for i, pooled := range []bool{false, true} {
				var opts []exec.RunOption
				if pooled {
					opts = append(opts, exec.WithPool(pool))
				}
				results[i], logs[i], errs[i] = exec.Run(db, mode, ops.Blocked, p.plan, opts...)
			}
			if (errs[0] == nil) != (errs[1] == nil) {
				t.Fatalf("seed %d: %+v %v: serial err %v, pooled err %v", seed, p.spec, mode, errs[0], errs[1])
			}
			if errs[0] != nil {
				continue // both rejected outright: a legal detect-or-reject outcome
			}
			if !results[0].Equal(results[1]) {
				t.Fatalf("seed %d: %+v %v: serial and pooled results diverge under faults: %s",
					seed, p.spec, mode, firstDivergence(results[0], results[1]))
			}
			if !logs[0].Equal(logs[1]) {
				t.Fatalf("seed %d: %+v %v: serial and pooled fault logs differ (%d vs %d entries)",
					seed, p.spec, mode, logs[0].Count(), logs[1].Count())
			}
			// Detect-or-reject holds for every mode that checks data at
			// rest before using it. LateOnetime is deliberately excluded:
			// a corrupted code word can flip a filter decision and be
			// discarded before the late check ever sees it - the exact
			// vulnerability window the paper cites as motivation for
			// continuous recoding, reproduced here by the fuzzer.
			if mode != exec.LateOnetime && !results[0].Equal(p.ref) && logs[0].Count() == 0 {
				t.Fatalf("seed %d: %+v %v: silent wrong answer - result diverges with an empty error log: %s",
					seed, p.spec, mode, firstDivergence(p.ref, results[0]))
			}
		}
	}

	// Property 3: supervised recovery heals back to the exact reference.
	for _, p := range plans {
		res, rep, err := exec.RunWithRecovery(db, exec.Continuous, ops.Blocked, p.plan)
		if err != nil {
			t.Fatalf("seed %d: %+v under recovery: %v", seed, p.spec, err)
		}
		if !res.Equal(p.ref) {
			t.Fatalf("seed %d: %+v: recovered result wrong after %d attempts: %s",
				seed, p.spec, rep.Attempts, firstDivergence(p.ref, res))
		}
	}

	// Queries only heal what they read; the scrub sweeps the latent rest
	// and the whole schema must check clean afterwards.
	if _, err := db.Scrub(); err != nil {
		t.Fatalf("seed %d: final scrub: %v", seed, err)
	}
	for i, c := range cols {
		bad, err := c.CheckAll()
		if err != nil {
			t.Fatalf("seed %d: post-scrub check of %s: %v", seed, c.Name(), err)
		}
		if len(bad) != 0 {
			t.Fatalf("seed %d: %s still has %d bad positions after scrub (weight %d)", seed, c.Name(), len(bad), weights[i])
		}
	}
}

// TestStructuredSchemaDifferential pins the property on fixed seeds so
// plain `go test` exercises the generator matrix deterministically.
func TestStructuredSchemaDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("schema matrix is not short")
	}
	for seed := int64(1); seed <= 6; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			structDifferentialProperty(t, seed, seed*101+7, 4)
		})
	}
}

// FuzzRandomSchemaDifferential lets the fuzzer explore the schema,
// workload, and fault space. Everything is derived from the three
// integers, so every crash reproduces from its corpus entry.
func FuzzRandomSchemaDifferential(f *testing.F) {
	f.Add(int64(1), int64(108), int64(4))
	f.Add(int64(7), int64(3), int64(1))
	f.Add(int64(42), int64(42), int64(6))
	f.Add(int64(-9), int64(0), int64(2))
	f.Fuzz(func(t *testing.T, seed, faultSeed, flips int64) {
		structDifferentialProperty(t, seed, faultSeed, int(flips%7))
	})
}
