package storage

import (
	"fmt"

	"ahead/internal/an"
	"ahead/internal/bitpack"
	"ahead/internal/coding/residue"
)

// Column is a fixed-width dense array of values, the DSM storage unit of a
// column store (Section 4). A column is either unprotected (plain integer
// values, byte-compressed to the narrowest native width) or hardened (AN
// code words, stored in the narrowest native width that holds |D| + |A|
// bits). String columns are dictionary-encoded: the array holds integer
// dictionary codes and the column carries the dictionary.
type Column struct {
	name  string
	kind  Kind
	width int // physical bytes per value: 1, 2, 4 or 8

	u8  []uint8
	u16 []uint16
	u32 []uint32
	u64 []uint64

	code *an.Code    // non-nil iff the column stores code words
	dict *Dict       // non-nil iff the column is dictionary-encoded
	heap *StringHeap // non-nil iff the column is heap-backed (StrHeap)

	// packed is the lane-aligned mirror of a narrow hardened column (see
	// Packed): same code words, bit-packed so the SWAR kernels can scan
	// several per 64-bit word. The wide array stays authoritative - Get,
	// Bytes and the fallback kernels never consult the mirror - and every
	// mutation path (grow/setU64) keeps the two in lockstep.
	packed *bitpack.Lanes

	// resCode/resCheck carry the residue sidecar of a residue-hardened
	// column (exclusive with code): values stay plain and run the
	// unprotected kernels, while resCheck[i] holds Get(i) mod m for
	// at-rest verification via ResidueCheckAll - the adaptive
	// controller's cheap tier for cold columns. setU64 keeps the sidecar
	// in lockstep; Corrupt deliberately does not (see storeRaw).
	resCode  *residue.Code
	resCheck []uint16
}

// MaxPackedBits is the widest code a column maintains a packed mirror
// for. At W bits per lane the SWAR kernels fit 64/(W+1) lanes per word;
// beyond 20 bits that drops under three and the packed scan stops
// out-running the wide one, so the column falls back to the wide path.
const MaxPackedBits = 20

// NewColumn creates an empty unprotected column of the given kind. Str
// columns must be created with NewStrColumn.
func NewColumn(name string, kind Kind) (*Column, error) {
	if kind.IsHardened() {
		return nil, fmt.Errorf("storage: hardened columns are created by Harden, not NewColumn")
	}
	if kind == Str || kind == StrHeap {
		return nil, fmt.Errorf("storage: string columns are created by NewStrColumn or NewHeapStrColumn")
	}
	return &Column{name: name, kind: kind, width: kind.NaturalWidth()}, nil
}

// NewStrColumn dictionary-encodes the given string values: it builds the
// sorted dictionary and stores each value's code in the narrowest integer
// width. The column kind is Str; its integer codes behave like any other
// unprotected integer column for filtering, joining and hardening.
func NewStrColumn(name string, values []string) *Column {
	dict := NewDict(values)
	width, _ := widthForBits(dict.Bits())
	c := &Column{name: name, kind: Str, width: width, dict: dict}
	c.grow(len(values))
	for i, v := range values {
		code, _ := dict.Code(v)
		c.setU64(i, uint64(code))
	}
	return c
}

// Name returns the column name.
func (c *Column) Name() string { return c.name }

// Kind returns the logical column kind.
func (c *Column) Kind() Kind { return c.kind }

// Width returns the physical bytes per value.
func (c *Column) Width() int { return c.width }

// Code returns the AN code of a hardened column, or nil.
func (c *Column) Code() *an.Code { return c.code }

// IsHardened reports whether the column stores AN code words. Note that a
// hardened string column keeps kind Str; this method is the authoritative
// test.
func (c *Column) IsHardened() bool { return c.code != nil }

// Dict returns the dictionary of a string column, or nil.
func (c *Column) Dict() *Dict { return c.dict }

// Len returns the number of values.
func (c *Column) Len() int {
	switch c.width {
	case 1:
		return len(c.u8)
	case 2:
		return len(c.u16)
	case 4:
		return len(c.u32)
	default:
		return len(c.u64)
	}
}

// Bytes returns the memory the data array occupies - the unit of the
// storage-overhead comparisons (Figure 1b, Figure 8b). Dictionaries are
// accounted separately via Dict().Bytes().
func (c *Column) Bytes() int { return c.Len() * c.width }

// U8, U16, U32, U64 expose the physical array. They return nil when the
// column uses a different width; exactly one accessor is non-nil.
func (c *Column) U8() []uint8 { return c.u8 }

// U16 returns the 2-byte physical array, or nil.
func (c *Column) U16() []uint16 { return c.u16 }

// U32 returns the 4-byte physical array, or nil.
func (c *Column) U32() []uint32 { return c.u32 }

// U64 returns the 8-byte physical array, or nil.
func (c *Column) U64() []uint64 { return c.u64 }

func (c *Column) grow(n int) {
	switch c.width {
	case 1:
		c.u8 = append(c.u8, make([]uint8, n)...)
	case 2:
		c.u16 = append(c.u16, make([]uint16, n)...)
	case 4:
		c.u32 = append(c.u32, make([]uint32, n)...)
	default:
		c.u64 = append(c.u64, make([]uint64, n)...)
	}
	if c.packed != nil {
		c.packed.Grow(n)
		for j := 0; j < n; j++ {
			c.packed.Append(0)
		}
	}
	if c.resCheck != nil {
		c.resCheck = append(c.resCheck, make([]uint16, n)...)
	}
}

// storeRaw writes the physical word and its packed-mirror lane without
// refreshing the residue sidecar. It is the corruption hook: a flip must
// land in both data representations (the packed kernels and the wide
// kernels observe identical words) but must NOT recompute the check, or
// residue-hardened columns could never detect anything.
func (c *Column) storeRaw(i int, v uint64) {
	switch c.width {
	case 1:
		c.u8[i] = uint8(v)
	case 2:
		c.u16[i] = uint16(v)
	case 4:
		c.u32[i] = uint32(v)
	default:
		c.u64[i] = v
	}
	if c.packed != nil {
		c.packed.Set(i, v)
	}
}

func (c *Column) setU64(i int, v uint64) {
	c.storeRaw(i, v)
	if c.resCheck != nil {
		c.resCheck[i] = uint16(c.resCode.Residue(v))
	}
}

// Packed returns the lane-aligned mirror of a narrow hardened column, or
// nil when the column does not qualify (unprotected, or code wider than
// MaxPackedBits). The mirror holds the same raw code words as the wide
// array - flips injected through Corrupt land in both, masked to the
// code width like the fault framework's masks - so the packed kernels
// and the wide kernels observe identical data.
func (c *Column) Packed() *bitpack.Lanes { return c.packed }

// initPacked (re)builds the packed mirror from the wide array. Bulk
// constructors (Harden, Reencode, Slice, Replicate, the persist loader)
// call it once after filling; incremental mutations afterwards flow
// through grow/setU64 and keep the mirror in lockstep.
func (c *Column) initPacked() {
	c.packed = nil
	if c.code == nil || c.code.CodeBits() > MaxPackedBits {
		return
	}
	l, err := bitpack.NewHardenedLanes(c.code)
	if err != nil {
		return
	}
	n := c.Len()
	l.Grow(n)
	for i := 0; i < n; i++ {
		l.Append(c.Get(i))
	}
	c.packed = l
}

// Get returns the raw physical value at position i: the plain value for
// unprotected columns, the code word for hardened ones.
func (c *Column) Get(i int) uint64 {
	switch c.width {
	case 1:
		return uint64(c.u8[i])
	case 2:
		return uint64(c.u16[i])
	case 4:
		return uint64(c.u32[i])
	default:
		return c.u64[i]
	}
}

// Append adds a plain value to an unprotected column, or hardens and adds
// a plain value to a hardened column (UDI operations are orthogonal to
// hardening, Section 4.1: inserting into a hardened column just means
// inserting hardened data).
func (c *Column) Append(v uint64) {
	i := c.Len()
	c.grow(1)
	if c.code != nil {
		v = c.code.Encode(v)
	}
	c.setU64(i, v)
}

// AppendRaw adds a raw physical value without encoding. Used by operators
// that already hold code words.
func (c *Column) AppendRaw(v uint64) {
	i := c.Len()
	c.grow(1)
	c.setU64(i, v)
}

// Set overwrites position i with a plain value, hardening it first on
// hardened columns (the update of UDI).
func (c *Column) Set(i int, v uint64) {
	if c.code != nil {
		v = c.code.Encode(v)
	}
	c.setU64(i, v)
}

// Value returns the decoded logical value at position i: hardened columns
// soften the code word (without detection - use CheckAll or the query
// operators for that).
func (c *Column) Value(i int) uint64 {
	v := c.Get(i)
	if c.code != nil {
		return c.code.Decode(v)
	}
	return v
}

// Str returns the string at position i of a dictionary-encoded or
// heap-backed column.
func (c *Column) Str(i int) (string, error) {
	if c.heap != nil {
		return c.heap.Get(c.Value(i))
	}
	if c.dict == nil {
		return "", fmt.Errorf("storage: column %q has no dictionary", c.name)
	}
	return c.dict.Value(uint32(c.Value(i)))
}

// Heap returns the string heap of a heap-backed column, or nil.
func (c *Column) Heap() *StringHeap { return c.heap }

// Harden returns a hardened copy of the column: every value multiplied by
// the code's A and stored in the narrowest native width for |D| + |A|
// bits. String columns keep their dictionary; their codes are hardened
// like any integer.
func (c *Column) Harden(code *an.Code) (*Column, error) {
	if c.code != nil {
		return nil, fmt.Errorf("storage: column %q already hardened", c.name)
	}
	if bits := c.kind.DataBits(); c.kind != Str && c.kind != BigInt && code.DataBits() < bits {
		return nil, fmt.Errorf("storage: code covers %d bits, column %q holds %d-bit values", code.DataBits(), c.name, bits)
	}
	width, err := widthForBits(code.CodeBits())
	if err != nil {
		return nil, err
	}
	kind := c.kind
	if kind != Str && kind != StrHeap {
		kind, err = c.kind.Hardened()
		if err != nil {
			return nil, err
		}
	}
	out := &Column{name: c.name, kind: kind, width: width, code: code, dict: c.dict, heap: c.heap}
	n := c.Len()
	out.grow(n)
	for i := 0; i < n; i++ {
		out.setU64(i, code.Encode(c.Get(i)))
	}
	out.initPacked()
	return out, nil
}

// Soften returns an unprotected copy of a hardened column, decoding every
// value without corruption checks (the plain softening of Section 3).
func (c *Column) Soften() (*Column, error) {
	if c.code == nil {
		return nil, fmt.Errorf("storage: column %q is not hardened", c.name)
	}
	kind := c.kind
	if kind != Str && kind != StrHeap {
		var err error
		kind, err = c.kind.Softened()
		if err != nil {
			return nil, err
		}
	}
	width, err := widthForBits(c.code.DataBits())
	if err != nil {
		return nil, err
	}
	out := &Column{name: c.name, kind: kind, width: width, dict: c.dict, heap: c.heap}
	n := c.Len()
	out.grow(n)
	for i := 0; i < n; i++ {
		out.setU64(i, c.code.Decode(c.Get(i)))
	}
	return out, nil
}

// CheckAll verifies every code word of a hardened column and returns the
// positions of corrupted values - the standalone Δ detection pass over a
// base column.
func (c *Column) CheckAll() ([]uint64, error) {
	if c.code == nil {
		return nil, fmt.Errorf("storage: column %q is not hardened", c.name)
	}
	switch c.width {
	case 1:
		return an.CheckSlice(c.code, c.u8, nil), nil
	case 2:
		return an.CheckSlice(c.code, c.u16, nil), nil
	case 4:
		return an.CheckSlice(c.code, c.u32, nil), nil
	default:
		return an.CheckSlice(c.code, c.u64, nil), nil
	}
}

// Reencode re-hardens the column in place from its current code to next
// (Eq. 10) when both fit the same physical width; otherwise it returns a
// re-hardened copy at the required width.
func (c *Column) Reencode(next *an.Code) (*Column, error) {
	if c.code == nil {
		return nil, fmt.Errorf("storage: column %q is not hardened", c.name)
	}
	width, err := widthForBits(next.CodeBits())
	if err != nil {
		return nil, err
	}
	if width == c.width {
		switch c.width {
		case 1:
			err = an.ReencodeSlice(c.code, next, c.u8)
		case 2:
			err = an.ReencodeSlice(c.code, next, c.u16)
		case 4:
			err = an.ReencodeSlice(c.code, next, c.u32)
		default:
			err = an.ReencodeSlice(c.code, next, c.u64)
		}
		if err != nil {
			return nil, err
		}
		c.code = next
		c.initPacked()
		return c, nil
	}
	out := &Column{name: c.name, kind: c.kind, width: width, code: next, dict: c.dict, heap: c.heap}
	n := c.Len()
	out.grow(n)
	for i := 0; i < n; i++ {
		out.setU64(i, c.code.Reencode(c.Get(i), next))
	}
	out.initPacked()
	return out, nil
}

// Corrupt XORs mask into the physical word at position i - the hook the
// fault-injection framework uses to place bit flips. The flip lands in
// the wide array and the packed mirror but leaves the residue sidecar
// untouched, so it stays detectable there too.
func (c *Column) Corrupt(i int, mask uint64) {
	c.storeRaw(i, c.Get(i)^mask)
}

// HardenResidue returns a residue-hardened copy of an unprotected
// column: values stay plain (the unprotected kernels keep running at
// full speed) and a 16-bit check word per value carries the value modulo
// 2^checkBits - 1 for at-rest verification. The cheap tier the adaptive
// controller assigns to cold columns.
func (c *Column) HardenResidue(checkBits uint) (*Column, error) {
	if c.code != nil {
		return nil, fmt.Errorf("storage: column %q is AN-hardened; soften before residue hardening", c.name)
	}
	rc, err := residue.New(checkBits)
	if err != nil {
		return nil, err
	}
	out := &Column{name: c.name, kind: c.kind, width: c.width, dict: c.dict, heap: c.heap, resCode: rc}
	n := c.Len()
	out.resCheck = make([]uint16, n)
	out.grow(n)
	for i := 0; i < n; i++ {
		out.setU64(i, c.Get(i))
	}
	return out, nil
}

// ResidueCode returns the residue code of a residue-hardened column, or
// nil.
func (c *Column) ResidueCode() *residue.Code { return c.resCode }

// IsResidueHardened reports whether the column carries a residue
// sidecar.
func (c *Column) IsResidueHardened() bool { return c.resCheck != nil }

// ResidueCheckAll verifies every value of a residue-hardened column
// against its check word and returns the positions that mismatch - the
// standalone detection pass scrubs run over residue columns.
func (c *Column) ResidueCheckAll() ([]uint64, error) {
	if c.resCheck == nil {
		return nil, fmt.Errorf("storage: column %q is not residue-hardened", c.name)
	}
	var bad []uint64
	n := c.Len()
	for i := 0; i < n; i++ {
		if c.resCode.Residue(c.Get(i)) != uint64(c.resCheck[i]) {
			bad = append(bad, uint64(i))
		}
	}
	return bad, nil
}

// DropResidue returns an unprotected copy of a residue-hardened column
// (the values are already plain; only the sidecar is dropped).
func (c *Column) DropResidue() (*Column, error) {
	if c.resCheck == nil {
		return nil, fmt.Errorf("storage: column %q is not residue-hardened", c.name)
	}
	out := &Column{name: c.name, kind: c.kind, width: c.width, dict: c.dict, heap: c.heap}
	n := c.Len()
	out.grow(n)
	for i := 0; i < n; i++ {
		out.setU64(i, c.Get(i))
	}
	return out, nil
}
