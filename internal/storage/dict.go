package storage

import (
	"fmt"
	"sort"
)

// Dict is an order-preserving string dictionary (Section 4.1): the sorted
// list of distinct values of a string column. Column data arrays store
// fixed-width integer positions into the dictionary, so string equality
// and range predicates translate into integer comparisons on the codes.
// The dictionary is immutable once built.
type Dict struct {
	values []string
	index  map[string]uint32
}

// NewDict builds a dictionary over the given distinct values. Duplicates
// are removed; values are sorted so code order equals string order.
func NewDict(values []string) *Dict {
	uniq := make(map[string]struct{}, len(values))
	for _, v := range values {
		uniq[v] = struct{}{}
	}
	sorted := make([]string, 0, len(uniq))
	for v := range uniq {
		sorted = append(sorted, v)
	}
	sort.Strings(sorted)
	idx := make(map[string]uint32, len(sorted))
	for i, v := range sorted {
		idx[v] = uint32(i)
	}
	return &Dict{values: sorted, index: idx}
}

// Size returns the number of distinct values.
func (d *Dict) Size() int { return len(d.values) }

// Code returns the dictionary code of value v.
func (d *Dict) Code(v string) (uint32, bool) {
	c, ok := d.index[v]
	return c, ok
}

// Value returns the string at code c.
func (d *Dict) Value(c uint32) (string, error) {
	if int(c) >= len(d.values) {
		return "", fmt.Errorf("storage: dictionary code %d out of range (size %d)", c, len(d.values))
	}
	return d.values[c], nil
}

// CodeRange translates an inclusive string range [lo, hi] into the
// inclusive code range of dictionary entries within it. ok is false when
// no entry falls inside the range.
func (d *Dict) CodeRange(lo, hi string) (first, last uint32, ok bool) {
	i := sort.SearchStrings(d.values, lo)
	j := sort.Search(len(d.values), func(k int) bool { return d.values[k] > hi })
	if i >= j {
		return 0, 0, false
	}
	return uint32(i), uint32(j - 1), true
}

// PrefixRange translates a string prefix into the code range of entries
// sharing it, e.g. brand prefix "MFGR#22" onto the 40 brands below it.
func (d *Dict) PrefixRange(prefix string) (first, last uint32, ok bool) {
	i := sort.SearchStrings(d.values, prefix)
	end := i
	for end < len(d.values) && len(d.values[end]) >= len(prefix) && d.values[end][:len(prefix)] == prefix {
		end++
	}
	if i >= end {
		return 0, 0, false
	}
	return uint32(i), uint32(end - 1), true
}

// Bits returns the number of bits needed for a dictionary code.
func (d *Dict) Bits() uint {
	n := len(d.values)
	bits := uint(1)
	for (1 << bits) < n {
		bits++
	}
	return bits
}

// Bytes returns the heap storage the dictionary strings occupy, the
// accounting used by the storage-overhead experiments.
func (d *Dict) Bytes() int {
	total := 0
	for _, v := range d.values {
		total += len(v)
	}
	return total
}

// Values returns the sorted dictionary contents (read-only).
func (d *Dict) Values() []string { return d.values }
