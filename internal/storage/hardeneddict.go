package storage

import (
	"fmt"

	"ahead/internal/an"
	"ahead/internal/btree"
)

// HardenedDict protects the dictionary *index structure* itself, closing
// the gap Section 4.1 points at: "dictionaries are usually realized using
// index structures to efficiently encode and decode ... hardening
// pointer-intensive structures pose their own challenges and we refer to
// this solution [the authors' hardened B-trees] for hardening
// dictionaries".
//
// The encode direction (string -> code) runs through an AN-hardened
// B-tree keyed by a 48-bit string fingerprint; every key, payload and
// child reference on the lookup path is verified (internal/btree).
// Because fingerprints can collide, the candidate code is confirmed
// against the stored string - which doubles as semantic verification of
// the sorted-values array. The decode direction (code -> string) is the
// plain array access the column layout already protects via its hardened
// dictionary-code columns.
type HardenedDict struct {
	dict *Dict
	tree *btree.Tree
}

// fingerprintCode hardens the 48-bit fingerprints in the index.
var fingerprintCode = an.MustNew(32417, 48)

// fingerprint folds a string into 48 bits (FNV-1a style).
func fingerprint(s string) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h & (1<<48 - 1)
}

// HardenIndex builds the hardened encode index over a dictionary.
func HardenIndex(d *Dict) (*HardenedDict, error) {
	if d.Size() >= 1<<32 {
		return nil, fmt.Errorf("storage: dictionary too large for hardened index")
	}
	tree := btree.New(fingerprintCode)
	for code, v := range d.Values() {
		fp := fingerprint(v)
		// Collisions chain linearly in fingerprint space: probe for a
		// free slot. The confirmation step below makes this safe.
		for {
			_, taken, err := tree.Lookup(fp)
			if err != nil {
				return nil, err
			}
			if !taken {
				break
			}
			fp = (fp + 1) & (1<<48 - 1)
		}
		if err := tree.Insert(fp, uint64(code)); err != nil {
			return nil, err
		}
	}
	return &HardenedDict{dict: d, tree: tree}, nil
}

// Dict returns the underlying dictionary.
func (h *HardenedDict) Dict() *Dict { return h.dict }

// Code resolves a string through the hardened index. Corruption anywhere
// on the path - tree keys, payloads, child references - surfaces as an
// error instead of a wrong code.
func (h *HardenedDict) Code(v string) (uint32, bool, error) {
	fp := fingerprint(v)
	for probes := 0; probes <= h.dict.Size(); probes++ {
		code, found, err := h.tree.Lookup(fp)
		if err != nil {
			return 0, false, fmt.Errorf("storage: hardened dictionary index corrupted: %w", err)
		}
		if !found {
			return 0, false, nil
		}
		// Confirm against the stored string (collision resolution and
		// end-to-end verification in one step).
		got, err := h.dict.Value(uint32(code))
		if err != nil {
			return 0, false, fmt.Errorf("storage: hardened dictionary payload out of range: %w", err)
		}
		if got == v {
			return uint32(code), true, nil
		}
		fp = (fp + 1) & (1<<48 - 1)
	}
	return 0, false, nil
}

// Verify walks the whole index checking every hardened word.
func (h *HardenedDict) Verify() error { return h.tree.Verify() }

// Tree exposes the underlying B-tree for fault-injection experiments.
func (h *HardenedDict) Tree() *btree.Tree { return h.tree }
