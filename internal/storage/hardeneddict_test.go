package storage

import (
	"fmt"
	"testing"
)

func TestHardenedDictResolvesEverything(t *testing.T) {
	var values []string
	for i := 0; i < 1000; i++ {
		values = append(values, fmt.Sprintf("MFGR#%d%d%d", i%5+1, i%5+1, i%40+1))
	}
	values = append(values, "UNITED KI1", "UNITED KI5", "ASIA")
	d := NewDict(values)
	h, err := HardenIndex(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Verify(); err != nil {
		t.Fatal(err)
	}
	for _, v := range d.Values() {
		code, found, err := h.Code(v)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := d.Code(v)
		if !found || code != want {
			t.Fatalf("Code(%q) = %d,%v, want %d", v, code, found, want)
		}
	}
	if _, found, err := h.Code("NOT A VALUE"); err != nil || found {
		t.Fatalf("absent value: %v, %v", found, err)
	}
	if h.Dict() != d {
		t.Fatal("dict accessor")
	}
}

func TestHardenedDictDetectsIndexCorruption(t *testing.T) {
	d := NewDict([]string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"})
	h, err := HardenIndex(d)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a key in the tree: lookups crossing it must error, never
	// return a wrong code.
	if err := h.Tree().CorruptKey(h.Tree().Root(), 0, 1<<7); err != nil {
		t.Fatal(err)
	}
	sawError := false
	for _, v := range d.Values() {
		if _, _, err := h.Code(v); err != nil {
			sawError = true
		}
	}
	if !sawError {
		t.Fatal("corrupted index never surfaced an error")
	}
	if h.Verify() == nil {
		t.Fatal("verify must find the corruption")
	}
}

func TestFingerprintCollisionsResolve(t *testing.T) {
	// Force the probing path by inserting strings and then querying
	// them all; with 5000 entries in a 2^48 space natural collisions are
	// unlikely, so also verify the probe loop terminates for a miss that
	// lands on an occupied fingerprint.
	var values []string
	for i := 0; i < 5000; i++ {
		values = append(values, fmt.Sprintf("value-%d", i))
	}
	d := NewDict(values)
	h, err := HardenIndex(d)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i += 97 {
		v := fmt.Sprintf("value-%d", i)
		code, found, err := h.Code(v)
		if err != nil || !found {
			t.Fatalf("Code(%q): %v, %v", v, found, err)
		}
		if got, _ := d.Value(code); got != v {
			t.Fatalf("round trip %q -> %q", v, got)
		}
	}
}
