package storage

import "fmt"

// StringHeap is the paper's string storage (Section 6.1): "for strings,
// we use a separate data heap and the data column contains pointers to
// the actual string values". Values are appended to one byte buffer; the
// column stores a packed reference per row.
//
// A reference packs offset and length into 48 bits (offset<<8 | len,
// strings up to 255 bytes, heaps up to 2^40 bytes), so hardening the
// pointer column with a resbig code keeps it at the same 8-byte physical
// width - pointers are protected for free, while the heap bytes
// themselves stay unhardened exactly as in the prototype (string-data
// hardening is the paper's future work).
type StringHeap struct {
	buf []byte
}

// refBits is the data width of a packed heap reference.
const refBits = 48

// Add appends s and returns its packed reference.
func (h *StringHeap) Add(s string) (uint64, error) {
	if len(s) > 255 {
		return 0, fmt.Errorf("storage: heap string of %d bytes exceeds 255", len(s))
	}
	off := uint64(len(h.buf))
	if off >= 1<<40 {
		return 0, fmt.Errorf("storage: string heap full")
	}
	h.buf = append(h.buf, s...)
	return off<<8 | uint64(len(s)), nil
}

// Get resolves a packed reference.
func (h *StringHeap) Get(ref uint64) (string, error) {
	off := ref >> 8
	n := ref & 0xFF
	if off+n > uint64(len(h.buf)) {
		return "", fmt.Errorf("storage: heap reference %d out of range", ref)
	}
	return string(h.buf[off : off+n]), nil
}

// Bytes returns the heap size.
func (h *StringHeap) Bytes() int { return len(h.buf) }

// NewHeapStrColumn stores the values in a fresh string heap and returns
// the pointer column referencing it.
func NewHeapStrColumn(name string, values []string) (*Column, error) {
	heap := &StringHeap{}
	c := &Column{name: name, kind: StrHeap, width: 8, heap: heap}
	for _, v := range values {
		ref, err := heap.Add(v)
		if err != nil {
			return nil, err
		}
		c.u64 = append(c.u64, ref)
	}
	return c, nil
}
