package storage

import (
	"strings"
	"testing"
)

func TestHeapStrColumnBasics(t *testing.T) {
	vals := []string{"1-URGENT", "5-LOW", "", "3-MEDIUM", "5-LOW"}
	c, err := NewHeapStrColumn("prio", vals)
	if err != nil {
		t.Fatal(err)
	}
	if c.Kind() != StrHeap || c.Width() != 8 || c.Len() != len(vals) {
		t.Fatalf("kind=%v width=%d len=%d", c.Kind(), c.Width(), c.Len())
	}
	for i, v := range vals {
		got, err := c.Str(i)
		if err != nil || got != v {
			t.Fatalf("Str(%d) = %q, %v", i, got, err)
		}
	}
	// Unlike dictionaries, heap strings are stored per row.
	wantHeap := 0
	for _, v := range vals {
		wantHeap += len(v)
	}
	if c.Heap().Bytes() != wantHeap {
		t.Fatalf("heap bytes %d, want %d", c.Heap().Bytes(), wantHeap)
	}
}

func TestHeapStrLimits(t *testing.T) {
	if _, err := NewHeapStrColumn("x", []string{strings.Repeat("a", 256)}); err == nil {
		t.Error("strings above 255 bytes must error")
	}
	h := &StringHeap{}
	if _, err := h.Get(255<<8 | 10); err == nil {
		t.Error("dangling reference must error")
	}
}

func TestHeapStrColumnHardening(t *testing.T) {
	vals := []string{"AIR", "TRUCK", "SHIP", "RAIL"}
	c, err := NewHeapStrColumn("mode", vals)
	if err != nil {
		t.Fatal(err)
	}
	code, err := LargestCodeChooser(48)
	if err != nil {
		t.Fatal(err)
	}
	h, err := c.Harden(code)
	if err != nil {
		t.Fatal(err)
	}
	// References harden at the same 8-byte width: pointer protection is
	// free in storage terms.
	if h.Width() != 8 || h.Bytes() != c.Bytes() {
		t.Fatalf("hardened width %d bytes %d, want same as plain %d", h.Width(), h.Bytes(), c.Bytes())
	}
	if h.Kind() != StrHeap {
		t.Fatalf("kind %v", h.Kind())
	}
	for i, v := range vals {
		got, err := h.Str(i)
		if err != nil || got != v {
			t.Fatalf("hardened Str(%d) = %q, %v", i, got, err)
		}
	}
	// Corrupted references are detected, and a lookup through the
	// corrupted reference fails instead of slicing garbage.
	h.Corrupt(2, 1<<13)
	errs, err := h.CheckAll()
	if err != nil || len(errs) != 1 || errs[0] != 2 {
		t.Fatalf("CheckAll = %v, %v", errs, err)
	}
	// Soften preserves the heap.
	h.Corrupt(2, 1<<13) // restore
	s, err := h.Soften()
	if err != nil {
		t.Fatal(err)
	}
	if got, err := s.Str(1); err != nil || got != "TRUCK" {
		t.Fatalf("softened Str(1) = %q, %v", got, err)
	}
}

func TestHeapStrInTable(t *testing.T) {
	c1, err := NewHeapStrColumn("a", []string{"xx", "yy"})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewHeapStrColumn("b", []string{"zzz", "wwww"})
	if err != nil {
		t.Fatal(err)
	}
	tb := NewTable("t")
	if err := tb.AddColumn(c1); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddColumn(c2); err != nil {
		t.Fatal(err)
	}
	// 2 rows x 8 bytes x 2 columns + 4 + 7 heap bytes.
	if got := tb.Bytes(); got != 2*8*2+4+7 {
		t.Fatalf("table bytes %d", got)
	}
	// Hardening a table with heap columns keeps the heap unhardened and
	// the reference arrays at the same width: zero storage growth for
	// string columns.
	h, err := tb.Harden(LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	if h.Bytes() != tb.Bytes() {
		t.Fatalf("hardened table bytes %d, want %d", h.Bytes(), tb.Bytes())
	}
	// Replication shares the immutable heap but copies the references.
	r, err := tb.Replicate()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := r.MustColumn("a").Str(0); got != "xx" {
		t.Fatal("replica strings")
	}
	if _, err := NewColumn("x", StrHeap); err == nil {
		t.Error("NewColumn must reject StrHeap")
	}
	if StrHeap.String() != "stringheap" || StrHeap.DataBits() != 48 || StrHeap.NaturalWidth() != 8 {
		t.Error("StrHeap kind properties")
	}
}
