// Package storage implements the AHEAD hardened columnar storage concept
// (Section 4): fixed-width data arrays for integer data - optionally
// AN-hardened - and dictionary encoding for variable-width strings, the
// two structures every base-table column of an in-memory column store maps
// onto.
//
// The type system mirrors the paper's prototype (Section 6.1): unprotected
// columns use byte-level compression onto the smallest native width
// (tinyint, shortint, int, bigint), and each hardened variant (restiny,
// resshort, resint, resbig) stores code words in the next native width
// wide enough for |D| + |A| bits, so the physical width of a hardened
// column follows from the chosen A.
package storage

import "fmt"

// Kind is the logical column type.
type Kind uint8

// The supported logical column types.
const (
	// TinyInt holds 8-bit unsigned integers.
	TinyInt Kind = iota
	// ShortInt holds 16-bit unsigned integers.
	ShortInt
	// Int holds 32-bit unsigned integers.
	Int
	// BigInt holds unsigned integers up to 64 bits unprotected; the
	// hardened variant is limited to 48 data bits so that code words
	// with |A| <= 16 still fit native 64-bit words (Section 6.1).
	BigInt
	// ResTiny is the hardened variant of TinyInt.
	ResTiny
	// ResShort is the hardened variant of ShortInt.
	ResShort
	// ResInt is the hardened variant of Int.
	ResInt
	// ResBig is the hardened variant of BigInt (48 data bits).
	ResBig
	// Str is a dictionary-encoded string column: the physical data array
	// holds fixed-width references into a sorted dictionary.
	Str
	// StrHeap is a heap-backed string column (the prototype's string
	// storage): the data array holds packed offset/length references
	// into an unhardened byte heap. Hardening protects the references
	// (48-bit data in 64-bit words), not the heap bytes.
	StrHeap
)

// String implements fmt.Stringer using the paper's type names.
func (k Kind) String() string {
	switch k {
	case TinyInt:
		return "tinyint"
	case ShortInt:
		return "shortint"
	case Int:
		return "int"
	case BigInt:
		return "bigint"
	case ResTiny:
		return "restiny"
	case ResShort:
		return "resshort"
	case ResInt:
		return "resint"
	case ResBig:
		return "resbig"
	case Str:
		return "string"
	case StrHeap:
		return "stringheap"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// IsHardened reports whether the kind stores AN code words.
func (k Kind) IsHardened() bool {
	return k >= ResTiny && k <= ResBig
}

// DataBits returns the logical data width |D| in bits.
func (k Kind) DataBits() uint {
	switch k {
	case TinyInt, ResTiny:
		return 8
	case ShortInt, ResShort:
		return 16
	case Int, ResInt:
		return 32
	case BigInt:
		return 64
	case ResBig, StrHeap:
		return 48
	default:
		return 0
	}
}

// NaturalWidth returns the physical bytes per value of an *unprotected*
// column of this kind. Hardened columns derive their width from the code.
func (k Kind) NaturalWidth() int {
	switch k {
	case TinyInt:
		return 1
	case ShortInt:
		return 2
	case Int:
		return 4
	case BigInt, StrHeap:
		return 8
	default:
		return 0
	}
}

// Hardened maps an unprotected kind onto its hardened counterpart.
func (k Kind) Hardened() (Kind, error) {
	switch k {
	case TinyInt:
		return ResTiny, nil
	case ShortInt:
		return ResShort, nil
	case Int:
		return ResInt, nil
	case BigInt:
		return ResBig, nil
	default:
		return 0, fmt.Errorf("storage: %v has no hardened variant", k)
	}
}

// Softened maps a hardened kind back onto its unprotected counterpart.
func (k Kind) Softened() (Kind, error) {
	switch k {
	case ResTiny:
		return TinyInt, nil
	case ResShort:
		return ShortInt, nil
	case ResInt:
		return Int, nil
	case ResBig:
		return BigInt, nil
	default:
		return 0, fmt.Errorf("storage: %v is not hardened", k)
	}
}

// widthForBits returns the narrowest native width (1, 2, 4 or 8 bytes)
// holding the given number of bits.
func widthForBits(bits uint) (int, error) {
	switch {
	case bits <= 8:
		return 1, nil
	case bits <= 16:
		return 2, nil
	case bits <= 32:
		return 4, nil
	case bits <= 64:
		return 8, nil
	default:
		return 0, fmt.Errorf("storage: %d bits exceed native widths", bits)
	}
}

// KindForBits returns the narrowest unprotected integer kind holding the
// given number of bits, the byte-level compression rule of Section 6.1.
func KindForBits(bits uint) (Kind, error) {
	switch {
	case bits == 0:
		return 0, fmt.Errorf("storage: zero-width values")
	case bits <= 8:
		return TinyInt, nil
	case bits <= 16:
		return ShortInt, nil
	case bits <= 32:
		return Int, nil
	case bits <= 64:
		return BigInt, nil
	default:
		return 0, fmt.Errorf("storage: %d bits exceed native widths", bits)
	}
}
