package storage

import (
	"bytes"
	"testing"

	"ahead/internal/an"
)

// lanesMirrorColumn asserts the packed mirror holds exactly the wide
// array's code words, lane for lane.
func lanesMirrorColumn(t *testing.T, c *Column) {
	t.Helper()
	l := c.Packed()
	if l == nil {
		t.Fatalf("column %q must carry a packed mirror", c.Name())
	}
	if l.Len() != c.Len() {
		t.Fatalf("mirror holds %d lanes, column %d rows", l.Len(), c.Len())
	}
	for i := 0; i < c.Len(); i++ {
		if got, want := l.Get(i), c.Get(i); got != want {
			t.Fatalf("lane %d holds %d, wide array %d", i, got, want)
		}
	}
}

func TestPackedMirrorSelection(t *testing.T) {
	c, _ := NewColumn("v", TinyInt)
	for i := 0; i < 100; i++ {
		c.Append(uint64(i % 50))
	}
	if c.Packed() != nil {
		t.Fatal("unprotected column must not carry a mirror")
	}
	h, err := c.Harden(an.MustNew(233, 8))
	if err != nil {
		t.Fatal(err)
	}
	// 8 data bits + 8 code-parameter bits = 16 <= MaxPackedBits.
	lanesMirrorColumn(t, h)

	// A 32-bit domain under a 15-bit A needs 47 bits per word: too wide
	// to win from packing (fewer than 3 lanes per word).
	w, _ := NewColumn("w", Int)
	for i := 0; i < 10; i++ {
		w.Append(uint64(i) << 20)
	}
	hw, err := w.Harden(an.MustNew(32417, 32))
	if err != nil {
		t.Fatal(err)
	}
	if hw.Packed() != nil {
		t.Fatal("47-bit code words must not be mirrored (CodeBits > MaxPackedBits)")
	}
}

// TestPackedMirrorTracksMutations pins the lockstep contract: every
// mutation path of the wide array (Append, AppendRaw, Set, Corrupt)
// lands in the mirror too.
func TestPackedMirrorTracksMutations(t *testing.T) {
	c, _ := NewColumn("v", TinyInt)
	for i := 0; i < 65; i++ { // not a multiple of the lane count
		c.Append(uint64(i % 50))
	}
	code := an.MustNew(233, 8)
	h, err := c.Harden(code)
	if err != nil {
		t.Fatal(err)
	}
	h.Append(42)
	h.AppendRaw(code.Encode(17))
	h.Set(3, 9)
	h.Corrupt(7, 1<<5)
	h.Corrupt(65, 1<<15) // the appended row, top code bit
	lanesMirrorColumn(t, h)
	if h.Packed().Get(7) == code.Encode(7%50) {
		t.Fatal("corruption did not reach the mirror")
	}
}

// TestPackedMirrorSurvivesBulkConstructors covers the bulk paths that
// rebuild rather than track: Reencode (both the in-place and the
// copying branch), table Slice and Replicate, and the persist loader.
func TestPackedMirrorSurvivesBulkConstructors(t *testing.T) {
	c, _ := NewColumn("v", TinyInt)
	for i := 0; i < 100; i++ {
		c.Append(uint64(i % 50))
	}
	h, err := c.Harden(an.MustNew(233, 8))
	if err != nil {
		t.Fatal(err)
	}

	// In-place reencode: 59 needs 6 bits, 8+6=14 stays in width 2.
	re, err := h.Reencode(an.MustNew(59, 8))
	if err != nil {
		t.Fatal(err)
	}
	lanesMirrorColumn(t, re)

	// Widening reencode beyond MaxPackedBits drops the mirror.
	wide, err := re.Reencode(an.MustNew(32417, 8))
	if err != nil {
		t.Fatal(err)
	}
	if wide.Packed() != nil {
		t.Fatal("reencode past MaxPackedBits must drop the mirror")
	}

	// Table Slice and Replicate rebuild mirrors on their copies.
	h2, err := c.Harden(an.MustNew(233, 8))
	if err != nil {
		t.Fatal(err)
	}
	tbl := NewTable("t")
	if err := tbl.AddColumn(h2); err != nil {
		t.Fatal(err)
	}
	sl, err := tbl.Slice([]int{5, 3, 99, 0, 41})
	if err != nil {
		t.Fatal(err)
	}
	lanesMirrorColumn(t, sl.Columns()[0])
	rep, err := tbl.Replicate()
	if err != nil {
		t.Fatal(err)
	}
	lanesMirrorColumn(t, rep.Columns()[0])

	// Persist round trip: the loader rebuilds the mirror after the
	// payload verifies.
	var buf bytes.Buffer
	if err := WriteColumn(&buf, h2); err != nil {
		t.Fatal(err)
	}
	loaded, bad, err := ReadColumn(&buf, "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("clean column loaded with %d bad positions", len(bad))
	}
	lanesMirrorColumn(t, loaded)
}
