package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"ahead/internal/an"
)

// Column persistence, version 2: a chunked, self-describing snapshot
// format. AHEAD's end-to-end story extends naturally to data at rest: a
// hardened column is written as its code words, so corruption picked up
// on disk, on the wire, or in the buffer pool is detected by the same AN
// machinery the query operators use - no separate checksum needed for
// the values themselves (compare the related-work HDFS discussion, where
// block checksums protect only the disk hop and leave in-memory data
// vulnerable).
//
// What the code words cannot see is structure: a flipped row count, a
// flipped dictionary byte, a flipped code parameter. Version 1 covered
// those with a single trailing XOR fold over the whole file, which meant
// one flipped byte condemned the entire column and nothing could be
// read lazily. Version 2 frames every section with its own CRC instead:
//
//	magic "AHEADCO2"
//	header: ULEB128 kind | width | codeA | codeBits | rows | chunkRows
//	headerCRC u32le   (over magic + header bytes)
//	dict?: ULEB128 count, then per entry ULEB128 len + bytes
//	dictCRC u32le     (Str columns; over the dict section bytes)
//	heap?: ULEB128 size + bytes
//	heapCRC u32le     (StrHeap columns; over the heap section bytes)
//	chunk 0 payload | chunkCRC u32le
//	chunk 1 payload | chunkCRC u32le
//	...
//
// Each chunk holds up to chunkRows values at the column's physical
// width, little-endian; the last chunk may be short. Chunk sizes are
// implied by the (CRC-protected) header, so a reader can seek straight
// to chunk i without touching the rest of the file - the basis of the
// lazy ColumnSnapshot reader and of the per-chunk digests the replica
// anti-entropy protocol exchanges.
//
// Load semantics keep the v1 contract: a CRC mismatch on the header,
// dictionary, or heap is an error (metadata has no repair story); a
// chunk CRC mismatch on an unprotected column is an error; a chunk CRC
// mismatch on a hardened column is an error only when no code word in
// that chunk accounts for it (that covers a flipped CRC byte itself) -
// value-granular AN detections are reported as repairable positions,
// and only the affected chunk's worth of trust is in question.

var persistMagic = [8]byte{'A', 'H', 'E', 'A', 'D', 'C', 'O', '2'}

// DefaultChunkRows is the chunk granularity WriteColumn uses: ~64K code
// words per chunk, so a flipped chunk costs at most 64K values to
// re-fetch rather than the whole column.
const DefaultChunkRows = 64 << 10

// maxChunkRows bounds the chunk granularity a file may declare, which in
// turn bounds the per-chunk buffer a reader allocates before the first
// read can fail (8 MiB at width 8).
const maxChunkRows = 1 << 20

// maxPersistRows bounds the row count a header may declare. Loads grow
// incrementally per chunk, so the cap only guards the int conversion.
const maxPersistRows = 1 << 48

// NumChunks returns the number of chunks a column of rows values splits
// into at the given chunk granularity.
func NumChunks(rows, chunkRows int) int {
	if rows <= 0 || chunkRows <= 0 {
		return 0
	}
	return (rows + chunkRows - 1) / chunkRows
}

// WriteColumn serializes the column at the default chunk granularity.
func WriteColumn(w io.Writer, c *Column) error {
	return WriteColumnChunked(w, c, DefaultChunkRows)
}

// WriteColumnChunked serializes the column with chunkRows values per
// CRC-framed chunk. Smaller chunks mean finer re-fetch granularity and
// more digest entries; DefaultChunkRows is the production setting.
func WriteColumnChunked(w io.Writer, c *Column, chunkRows int) error {
	if chunkRows <= 0 || chunkRows > maxChunkRows {
		return fmt.Errorf("storage: chunk granularity %d out of range [1, %d]", chunkRows, maxChunkRows)
	}
	bw := bufio.NewWriter(w)
	var codeA, codeBits uint64
	if c.code != nil {
		codeA = c.code.A()
		codeBits = uint64(c.code.DataBits())
	}
	hdr := make([]byte, 0, 8+6*binary.MaxVarintLen64)
	hdr = append(hdr, persistMagic[:]...)
	for _, v := range []uint64{uint64(c.kind), uint64(c.width), codeA, codeBits, uint64(c.Len()), uint64(chunkRows)} {
		hdr = binary.AppendUvarint(hdr, v)
	}
	bw.Write(hdr)
	writeCRC(bw, crc32.ChecksumIEEE(hdr))
	if c.kind == Str && c.dict != nil {
		var sec []byte
		sec = binary.AppendUvarint(sec, uint64(c.dict.Size()))
		for _, s := range c.dict.Values() {
			sec = binary.AppendUvarint(sec, uint64(len(s)))
			sec = append(sec, s...)
		}
		bw.Write(sec)
		writeCRC(bw, crc32.ChecksumIEEE(sec))
	}
	if c.kind == StrHeap && c.heap != nil {
		sz := binary.AppendUvarint(nil, uint64(len(c.heap.buf)))
		bw.Write(sz)
		bw.Write(c.heap.buf)
		crc := crc32.ChecksumIEEE(sz)
		crc = crc32.Update(crc, crc32.IEEETable, c.heap.buf)
		writeCRC(bw, crc)
	}
	n := c.Len()
	payload := make([]byte, 0, min(n, chunkRows)*c.width)
	for start := 0; start < n; start += chunkRows {
		end := min(start+chunkRows, n)
		payload = appendChunkPayload(payload[:0], c, start, end)
		bw.Write(payload)
		writeCRC(bw, crc32.ChecksumIEEE(payload))
	}
	return bw.Flush()
}

// appendChunkPayload serializes rows [start, end) of the column's
// physical words at its width, little-endian - the exact bytes a chunk
// carries on disk and on the anti-entropy wire, so CRCs computed from
// memory, snapshot, and peer agree byte-for-byte.
func appendChunkPayload(dst []byte, c *Column, start, end int) []byte {
	for i := start; i < end; i++ {
		v := c.Get(i)
		switch c.width {
		case 1:
			dst = append(dst, byte(v))
		case 2:
			dst = binary.LittleEndian.AppendUint16(dst, uint16(v))
		case 4:
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
		default:
			dst = binary.LittleEndian.AppendUint64(dst, v)
		}
	}
	return dst
}

// ColumnChunkCRCs computes the per-chunk CRCs of the column's current
// in-memory contents at the given granularity - what WriteColumnChunked
// would store. Replicas compare these against a peer's digests to find
// diverged chunks without shipping data.
func ColumnChunkCRCs(c *Column, chunkRows int) ([]uint32, error) {
	if chunkRows <= 0 || chunkRows > maxChunkRows {
		return nil, fmt.Errorf("storage: chunk granularity %d out of range [1, %d]", chunkRows, maxChunkRows)
	}
	n := c.Len()
	crcs := make([]uint32, 0, NumChunks(n, chunkRows))
	var payload []byte
	for start := 0; start < n; start += chunkRows {
		end := min(start+chunkRows, n)
		payload = appendChunkPayload(payload[:0], c, start, end)
		crcs = append(crcs, crc32.ChecksumIEEE(payload))
	}
	return crcs, nil
}

func writeCRC(bw *bufio.Writer, crc uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], crc)
	bw.Write(b[:])
}

// crcReader wraps a reader, folding every byte it hands out into a
// running CRC and counting them, so ULEB-framed sections can be verified
// against their trailing CRC and located without a second pass.
type crcReader struct {
	r   *bufio.Reader
	crc uint32
	n   int64
}

func (c *crcReader) ReadByte() (byte, error) {
	b, err := c.r.ReadByte()
	if err == nil {
		var one [1]byte
		one[0] = b
		c.crc = crc32.Update(c.crc, crc32.IEEETable, one[:])
		c.n++
	}
	return b, err
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

// readCRC reads a stored section CRC and compares it against the
// computed one.
func readCRC(br *bufio.Reader, got uint32, what string) error {
	var b [4]byte
	if _, err := io.ReadFull(br, b[:]); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(b[:]) != got {
		return fmt.Errorf("storage: corrupt %s (CRC mismatch)", what)
	}
	return nil
}

// colMeta is the decoded self-description of a serialized column: the
// header fields plus the (verified) dictionary or heap, and the byte
// offset where chunk 0 starts.
type colMeta struct {
	kind      Kind
	width     int
	code      *an.Code
	rows      int
	chunkRows int
	dict      *Dict
	heap      *StringHeap
	dataOff   int64 // file offset of the first chunk
}

// readColumnMeta parses and verifies everything before the first chunk.
func readColumnMeta(br *bufio.Reader) (*colMeta, error) {
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, err
	}
	if magic != persistMagic {
		return nil, fmt.Errorf("storage: not an AHEAD column file")
	}
	cr := &crcReader{r: br, crc: crc32.ChecksumIEEE(magic[:])}
	var hdr [6]uint64
	for i := range hdr {
		v, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, err
		}
		hdr[i] = v
	}
	if err := readCRC(br, cr.crc, "header"); err != nil {
		return nil, err
	}
	kind, width, codeA, codeBits, rows, chunkRows := hdr[0], hdr[1], hdr[2], hdr[3], hdr[4], hdr[5]
	if width != 1 && width != 2 && width != 4 && width != 8 {
		return nil, fmt.Errorf("storage: corrupt header: width %d", width)
	}
	if kind > uint64(StrHeap) {
		return nil, fmt.Errorf("storage: corrupt header: kind %d", kind)
	}
	if chunkRows == 0 || chunkRows > maxChunkRows {
		return nil, fmt.Errorf("storage: corrupt header: chunk granularity %d", chunkRows)
	}
	if rows > maxPersistRows {
		return nil, fmt.Errorf("storage: corrupt header: row count %d", rows)
	}
	m := &colMeta{kind: Kind(kind), width: int(width), rows: int(rows), chunkRows: int(chunkRows)}
	if codeA != 0 {
		code, err := an.New(codeA, uint(codeBits))
		if err != nil {
			return nil, fmt.Errorf("storage: corrupt header: %w", err)
		}
		m.code = code
	}
	metaLen := int64(len(magic)) + cr.n + 4
	if m.kind == Str {
		cr.crc, cr.n = 0, 0
		count, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, err
		}
		// Append rather than preallocate: count is untrusted until the
		// section CRC verifies, and a flipped high bit must fail at EOF,
		// not in make().
		vals := make([]string, 0, min(int(count), 4096))
		for i := uint64(0); i < count; i++ {
			l, err := binary.ReadUvarint(cr)
			if err != nil {
				return nil, err
			}
			if l > 1<<20 {
				return nil, fmt.Errorf("storage: corrupt dictionary entry length %d", l)
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(cr, buf); err != nil {
				return nil, err
			}
			vals = append(vals, string(buf))
		}
		if err := readCRC(br, cr.crc, "dictionary"); err != nil {
			return nil, err
		}
		m.dict = NewDict(vals)
		metaLen += cr.n + 4
	}
	if m.kind == StrHeap {
		cr.crc, cr.n = 0, 0
		size, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, err
		}
		if size > 1<<40 {
			return nil, fmt.Errorf("storage: corrupt heap size %d", size)
		}
		// Same untrusted-length discipline as the dictionary: read in
		// bounded pieces so a corrupt size fails at EOF, not in make().
		buf := make([]byte, 0, min(int(size), 1<<20))
		var piece [64 << 10]byte
		for read := uint64(0); read < size; {
			n := min(uint64(len(piece)), size-read)
			if _, err := io.ReadFull(cr, piece[:n]); err != nil {
				return nil, err
			}
			buf = append(buf, piece[:n]...)
			read += n
		}
		if err := readCRC(br, cr.crc, "heap"); err != nil {
			return nil, err
		}
		m.heap = &StringHeap{buf: buf}
		metaLen += cr.n + 4
	}
	m.dataOff = metaLen
	return m, nil
}

// ReadColumn deserializes a column written by WriteColumn and verifies
// its integrity chunk by chunk: unprotected payloads against their chunk
// CRCs, hardened payloads by AN-validating every code word (returning
// the corrupted positions alongside the column so callers can repair
// rather than refuse). Metadata - header, dictionary, heap - must
// verify exactly; it has no per-value repair story.
func ReadColumn(r io.Reader, name string) (*Column, []uint64, error) {
	br := bufio.NewReader(r)
	m, err := readColumnMeta(br)
	if err != nil {
		return nil, nil, err
	}
	c := &Column{name: name, kind: m.kind, width: m.width, code: m.code, dict: m.dict, heap: m.heap}
	var bad []uint64
	var payload []byte
	for start, chunk := 0, 0; start < m.rows; start, chunk = start+m.chunkRows, chunk+1 {
		rowsIn := min(m.rows-start, m.chunkRows)
		need := rowsIn * m.width
		if cap(payload) < need {
			payload = make([]byte, need)
		}
		payload = payload[:need]
		if _, err := io.ReadFull(br, payload); err != nil {
			return nil, nil, err
		}
		crc := crc32.ChecksumIEEE(payload)
		var stored [4]byte
		if _, err := io.ReadFull(br, stored[:]); err != nil {
			return nil, nil, err
		}
		// The chunk is framed; grow the column only once its bytes are
		// actually in hand (the row count steers allocation but cannot
		// trigger one beyond a chunk).
		c.grow(rowsIn)
		for i := 0; i < rowsIn; i++ {
			var v uint64
			switch m.width {
			case 1:
				v = uint64(payload[i])
			case 2:
				v = uint64(binary.LittleEndian.Uint16(payload[i*2:]))
			case 4:
				v = uint64(binary.LittleEndian.Uint32(payload[i*4:]))
			default:
				v = binary.LittleEndian.Uint64(payload[i*8:])
			}
			c.setU64(start+i, v)
		}
		badBefore := len(bad)
		bad = c.appendCheckRange(bad, start, rowsIn)
		if binary.LittleEndian.Uint32(stored[:]) != crc {
			if c.code == nil {
				return nil, nil, fmt.Errorf("storage: unprotected column %q failed chunk %d's load-time CRC", name, chunk)
			}
			// Hardened chunks self-verify on value granularity; the CRC
			// only arbitrates what the code words cannot see (including a
			// flipped CRC byte itself).
			if len(bad) == badBefore {
				return nil, nil, fmt.Errorf("storage: hardened column %q failed chunk %d's CRC with every code word valid (metadata corruption)", name, chunk)
			}
		}
	}
	c.initPacked()
	return c, bad, nil
}

// appendCheckRange AN-validates rows [start, start+n) of a hardened
// column and appends the global positions of corrupted words to errs;
// unprotected columns pass vacuously.
func (c *Column) appendCheckRange(errs []uint64, start, n int) []uint64 {
	if c.code == nil || n <= 0 {
		return errs
	}
	before := len(errs)
	switch c.width {
	case 1:
		errs = an.CheckSlice(c.code, c.u8[start:start+n], errs)
	case 2:
		errs = an.CheckSlice(c.code, c.u16[start:start+n], errs)
	case 4:
		errs = an.CheckSlice(c.code, c.u32[start:start+n], errs)
	default:
		errs = an.CheckSlice(c.code, c.u64[start:start+n], errs)
	}
	for i := before; i < len(errs); i++ {
		errs[i] += uint64(start)
	}
	return errs
}
