package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"ahead/internal/an"
)

// Column persistence. AHEAD's end-to-end story extends naturally to data
// at rest: a hardened column is written as its code words, so corruption
// picked up on disk, on the wire, or in the buffer pool is detected by
// the same AN machinery the query operators use - no separate checksum
// needed (compare the related-work HDFS discussion, where block checksums
// protect only the disk hop and leave in-memory data vulnerable).
// Unprotected columns get an XOR fold over the payload instead, verified
// once at load time - exactly the weaker, coarser guarantee the paper
// contrasts AHEAD with.
//
// Format (all little-endian):
//
//	magic "AHEADCO1" | kind u8 | width u8 | codeA u64 | codeBits u16 |
//	rows u64 | dict? | heap? | payload | xorFold u64
//
// dict: count u32, then len-u32-prefixed strings (Str columns).
// heap: size u64, then the raw bytes (StrHeap columns).
//
// The fold covers the header fields, the dictionary, the heap, and the
// payload in file order, and is written for hardened columns too: AN
// code words only protect the values, so without the fold a flipped row
// count (loading a silently truncated column), a flipped dictionary
// byte (silently renaming a value), or a flipped code parameter (every
// word "decoding" to garbage) would pass every per-word check. At load
// time a
// fold mismatch on an unprotected column is an error; on a hardened
// column it is an error only when no code word accounts for it -
// value-granular detections keep their repair story.

var persistMagic = [8]byte{'A', 'H', 'E', 'A', 'D', 'C', 'O', '1'}

// WriteColumn serializes the column.
func WriteColumn(w io.Writer, c *Column) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(persistMagic[:]); err != nil {
		return err
	}
	var codeA uint64
	var codeBits uint16
	if c.code != nil {
		codeA = c.code.A()
		codeBits = uint16(c.code.DataBits())
	}
	hdr := []interface{}{uint8(c.kind), uint8(c.width), codeA, codeBits, uint64(c.Len())}
	for _, v := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	// The header participates in the fold: a flipped code parameter
	// makes every stored word decode to garbage that still divides
	// cleanly, so code-word checks alone cannot arbitrate it.
	var fold uint64
	for _, v := range []uint64{uint64(c.kind), uint64(c.width), codeA, uint64(codeBits), uint64(c.Len())} {
		fold = foldMix(fold, v)
	}
	if c.dict != nil {
		if err := binary.Write(bw, binary.LittleEndian, uint32(c.dict.Size())); err != nil {
			return err
		}
		for _, s := range c.dict.Values() {
			if err := binary.Write(bw, binary.LittleEndian, uint32(len(s))); err != nil {
				return err
			}
			if _, err := bw.WriteString(s); err != nil {
				return err
			}
			fold = foldStr(fold, s)
		}
	}
	if c.heap != nil {
		if err := binary.Write(bw, binary.LittleEndian, uint64(len(c.heap.buf))); err != nil {
			return err
		}
		if _, err := bw.Write(c.heap.buf); err != nil {
			return err
		}
		fold = foldStr(fold, string(c.heap.buf))
	}
	n := c.Len()
	for i := 0; i < n; i++ {
		v := c.Get(i)
		fold = foldMix(fold, v)
		var err error
		switch c.width {
		case 1:
			err = bw.WriteByte(uint8(v))
		case 2:
			err = binary.Write(bw, binary.LittleEndian, uint16(v))
		case 4:
			err = binary.Write(bw, binary.LittleEndian, uint32(v))
		default:
			err = binary.Write(bw, binary.LittleEndian, v)
		}
		if err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, fold); err != nil {
		return err
	}
	return bw.Flush()
}

// foldMix folds one value into the running checksum.
func foldMix(fold, v uint64) uint64 {
	return fold ^ (v + 0x9E3779B97F4A7C15 + fold<<6)
}

// foldStr folds a string's length and bytes.
func foldStr(fold uint64, s string) uint64 {
	fold = foldMix(fold, uint64(len(s)))
	for i := 0; i < len(s); i++ {
		fold = foldMix(fold, uint64(s[i]))
	}
	return fold
}

// ReadColumn deserializes a column written by WriteColumn and verifies
// its integrity: unprotected payloads against the stored fold, hardened
// payloads by AN-validating every code word (returning the corrupted
// positions alongside the column so callers can repair rather than
// refuse).
func ReadColumn(r io.Reader, name string) (*Column, []uint64, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, nil, err
	}
	if magic != persistMagic {
		return nil, nil, fmt.Errorf("storage: not an AHEAD column file")
	}
	var kind, width uint8
	var codeA uint64
	var codeBits uint16
	var rows uint64
	for _, v := range []interface{}{&kind, &width, &codeA, &codeBits, &rows} {
		if err := binary.Read(br, binary.LittleEndian, v); err != nil {
			return nil, nil, err
		}
	}
	if width != 1 && width != 2 && width != 4 && width != 8 {
		return nil, nil, fmt.Errorf("storage: corrupt header: width %d", width)
	}
	if kind > uint8(StrHeap) {
		return nil, nil, fmt.Errorf("storage: corrupt header: kind %d", kind)
	}
	c := &Column{name: name, kind: Kind(kind), width: int(width)}
	if codeA != 0 {
		code, err := an.New(codeA, uint(codeBits))
		if err != nil {
			return nil, nil, fmt.Errorf("storage: corrupt header: %w", err)
		}
		c.code = code
	}
	var fold uint64
	for _, v := range []uint64{uint64(kind), uint64(width), codeA, uint64(codeBits), rows} {
		fold = foldMix(fold, v)
	}
	if c.kind == Str {
		var count uint32
		if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
			return nil, nil, err
		}
		// Append rather than preallocate: count is untrusted until the
		// trailing fold verifies, and a flipped high bit must fail at
		// EOF, not in make().
		vals := make([]string, 0, min(int(count), 4096))
		for i := uint32(0); i < count; i++ {
			var l uint32
			if err := binary.Read(br, binary.LittleEndian, &l); err != nil {
				return nil, nil, err
			}
			if l > 1<<20 {
				return nil, nil, fmt.Errorf("storage: corrupt dictionary entry length %d", l)
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, nil, err
			}
			vals = append(vals, string(buf))
			fold = foldStr(fold, vals[i])
		}
		c.dict = NewDict(vals)
	}
	if c.kind == StrHeap {
		var size uint64
		if err := binary.Read(br, binary.LittleEndian, &size); err != nil {
			return nil, nil, err
		}
		if size > 1<<40 {
			return nil, nil, fmt.Errorf("storage: corrupt heap size %d", size)
		}
		// Same untrusted-length discipline as the dictionary: read in
		// bounded chunks so a corrupt size fails at EOF, not in make().
		buf := make([]byte, 0, min(int(size), 1<<20))
		var chunk [64 << 10]byte
		for read := uint64(0); read < size; {
			n := uint64(len(chunk))
			if size-read < n {
				n = size - read
			}
			if _, err := io.ReadFull(br, chunk[:n]); err != nil {
				return nil, nil, err
			}
			buf = append(buf, chunk[:n]...)
			read += n
		}
		c.heap = &StringHeap{buf: buf}
		fold = foldStr(fold, string(buf))
	}
	// The row count is untrusted until the trailing fold verifies, so
	// grow in chunks as values arrive: a flipped high bit runs out of
	// input instead of allocating the claimed capacity.
	const growChunk = 64 << 10
	for i := 0; i < int(rows); i++ {
		if i%growChunk == 0 {
			n := int(rows) - i
			if n > growChunk {
				n = growChunk
			}
			c.grow(n)
		}
		var v uint64
		switch c.width {
		case 1:
			b, err := br.ReadByte()
			if err != nil {
				return nil, nil, err
			}
			v = uint64(b)
		case 2:
			var x uint16
			if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
				return nil, nil, err
			}
			v = uint64(x)
		case 4:
			var x uint32
			if err := binary.Read(br, binary.LittleEndian, &x); err != nil {
				return nil, nil, err
			}
			v = uint64(x)
		default:
			if err := binary.Read(br, binary.LittleEndian, &v); err != nil {
				return nil, nil, err
			}
		}
		fold = foldMix(fold, v)
		c.setU64(i, v)
	}
	var want uint64
	if err := binary.Read(br, binary.LittleEndian, &want); err != nil {
		return nil, nil, err
	}
	if c.code == nil {
		if fold != want {
			return nil, nil, fmt.Errorf("storage: unprotected column %q failed its load-time checksum", name)
		}
		return c, nil, nil
	}
	// Hardened columns self-verify on value granularity; the fold only
	// arbitrates what the code words cannot see (row count, dictionary
	// and heap bytes, the fold word itself).
	bad, err := c.CheckAll()
	if err != nil {
		return nil, nil, err
	}
	if fold != want && len(bad) == 0 {
		return nil, nil, fmt.Errorf("storage: hardened column %q failed its load-time checksum with every code word valid (metadata corruption)", name)
	}
	c.initPacked()
	return c, bad, nil
}
