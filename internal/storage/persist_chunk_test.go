package storage

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"ahead/internal/an"
)

// chunkedFixtureBytes serializes a hardened 64-row column at 16 rows per
// chunk: four chunks, so the sweep exercises interior chunk boundaries,
// not just the single-chunk degenerate case.
func chunkedFixtureBytes(t *testing.T) (*Column, []byte) {
	t.Helper()
	orig := hardenedFixture(t, 64)
	var buf bytes.Buffer
	if err := WriteColumnChunked(&buf, orig, 16); err != nil {
		t.Fatal(err)
	}
	return orig, buf.Bytes()
}

// TestChunkedFaultSweepHardened flips every bit of every byte of a
// multi-chunk hardened column - magic, header, header CRC, chunk
// payloads, chunk CRCs - and requires each load to error, to report the
// corruption, or to decode identically. No flip may silently load
// different data.
func TestChunkedFaultSweepHardened(t *testing.T) {
	orig, clean := chunkedFixtureBytes(t)
	for off := 0; off < len(clean); off++ {
		for bit := 0; bit < 8; bit++ {
			raw := bytes.Clone(clean)
			raw[off] ^= 1 << bit
			sweepOutcome(t, raw, orig, byteLabel(off, bit))
		}
	}
}

// TestChunkedFaultSweepUnprotected is the multi-chunk sweep over an
// unprotected column: every consequential flip must fail a chunk CRC or
// the header CRC.
func TestChunkedFaultSweepUnprotected(t *testing.T) {
	orig, err := NewColumn("v", Int)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		orig.Append(i * 999)
	}
	var buf bytes.Buffer
	if err := WriteColumnChunked(&buf, orig, 16); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for off := 0; off < len(clean); off++ {
		for bit := 0; bit < 8; bit++ {
			raw := bytes.Clone(clean)
			raw[off] ^= 1 << bit
			sweepOutcome(t, raw, orig, byteLabel(off, bit))
		}
	}
}

// TestChunkedTruncationSweep cuts a multi-chunk file at every prefix
// length and requires each truncated load to fail - every chunk's CRC
// trails its payload, so no strict prefix parses.
func TestChunkedTruncationSweep(t *testing.T) {
	_, clean := chunkedFixtureBytes(t)
	for n := 0; n < len(clean); n++ {
		if _, _, err := ReadColumn(bytes.NewReader(clean[:n]), "v"); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded without error", n, len(clean))
		}
	}
}

// TestChunkedFlippedCRCItself targets the stored chunk CRCs directly:
// when the flip lands in the CRC word rather than the data it covers,
// every code word stays valid, so the load must refuse (the
// metadata-corruption arbitration) - never report repairable positions
// for data that is actually intact, and never load silently.
func TestChunkedFlippedCRCItself(t *testing.T) {
	orig, clean := chunkedFixtureBytes(t)
	m, err := readColumnMeta(bufio.NewReader(bytes.NewReader(clean)))
	if err != nil {
		t.Fatal(err)
	}
	chunkStride := m.chunkRows*m.width + 4
	for chunk := 0; chunk < NumChunks(m.rows, m.chunkRows); chunk++ {
		rowsIn := min(m.rows-chunk*m.chunkRows, m.chunkRows)
		crcOff := int(m.dataOff) + chunk*chunkStride + rowsIn*m.width
		for b := 0; b < 4; b++ {
			for bit := 0; bit < 8; bit++ {
				raw := bytes.Clone(clean)
				raw[crcOff+b] ^= 1 << bit
				_, bad, err := ReadColumn(bytes.NewReader(raw), orig.Name())
				if err == nil {
					t.Fatalf("chunk %d CRC byte %d bit %d: load did not refuse (bad=%v)", chunk, b, bit, bad)
				}
			}
		}
	}
	// And the header CRC itself.
	hdrCRCOff := headerCRCOffset(clean)
	for b := 0; b < 4; b++ {
		raw := bytes.Clone(clean)
		raw[hdrCRCOff+b] ^= 0x10
		if _, _, err := ReadColumn(bytes.NewReader(raw), orig.Name()); err == nil {
			t.Fatalf("header CRC byte %d: load did not refuse", b)
		}
	}
}

// headerCRCOffset locates the stored header CRC by re-parsing the
// ULEB-framed header fields.
func headerCRCOffset(raw []byte) int {
	off := 8
	for i := 0; i < 6; i++ {
		_, n := binary.Uvarint(raw[off:])
		off += n
	}
	return off
}

// TestSnapshotReader exercises the lazy chunk reader: metadata, whole
// chunks, arbitrary row ranges, and the stored digest list must all
// agree with the in-memory column, and a flipped byte in one chunk must
// fail exactly that chunk while the others stay readable.
func TestSnapshotReader(t *testing.T) {
	orig, clean := chunkedFixtureBytes(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "v.col")
	if err := os.WriteFile(path, clean, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := OpenColumnSnapshot(path, "v")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Rows() != orig.Len() || s.ChunkRows() != 16 || s.Chunks() != 4 {
		t.Fatalf("meta: rows=%d chunkRows=%d chunks=%d", s.Rows(), s.ChunkRows(), s.Chunks())
	}
	if s.Code() == nil || s.Code().A() != orig.Code().A() {
		t.Fatalf("code lost: %v", s.Code())
	}
	for chunk := 0; chunk < s.Chunks(); chunk++ {
		words, err := s.ReadChunk(chunk)
		if err != nil {
			t.Fatal(err)
		}
		for j, w := range words {
			if want := orig.Get(chunk*16 + j); w != want {
				t.Fatalf("chunk %d word %d: %d vs %d", chunk, j, w, want)
			}
		}
	}
	for _, span := range [][2]int{{0, 64}, {5, 7}, {15, 2}, {14, 20}, {63, 1}, {0, 0}} {
		words, err := s.ReadRows(span[0], span[1])
		if err != nil {
			t.Fatal(err)
		}
		if len(words) != span[1] {
			t.Fatalf("ReadRows(%d,%d): %d words", span[0], span[1], len(words))
		}
		for j, w := range words {
			if want := orig.Get(span[0] + j); w != want {
				t.Fatalf("ReadRows(%d,%d)[%d]: %d vs %d", span[0], span[1], j, w, want)
			}
		}
	}
	if _, err := s.ReadRows(60, 10); err == nil {
		t.Fatal("out-of-range ReadRows did not error")
	}
	stored, err := s.StoredCRCs()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ColumnChunkCRCs(orig, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(stored) != len(want) {
		t.Fatalf("%d stored CRCs, want %d", len(stored), len(want))
	}
	for i := range stored {
		if stored[i] != want[i] {
			t.Fatalf("chunk %d: stored CRC %08x, in-memory %08x", i, stored[i], want[i])
		}
	}

	// Flip one payload byte of chunk 2 on disk: chunk 2 must refuse, the
	// other chunks must stay readable.
	m, err := readColumnMeta(bufio.NewReader(bytes.NewReader(clean)))
	if err != nil {
		t.Fatal(err)
	}
	raw := bytes.Clone(clean)
	raw[int(m.dataOff)+2*(16*m.width+4)+3] ^= 0x40
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := OpenColumnSnapshot(path, "v")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.ReadChunk(2); err == nil {
		t.Fatal("flipped chunk served without error")
	}
	for _, chunk := range []int{0, 1, 3} {
		if _, err := s2.ReadChunk(chunk); err != nil {
			t.Fatalf("intact chunk %d refused: %v", chunk, err)
		}
	}
}

// TestChunkCRCsGranularity checks that in-memory digests at a
// granularity different from the file's still describe the same data:
// re-chunking the column and re-deriving CRCs from a loaded copy agree.
func TestChunkCRCsGranularity(t *testing.T) {
	orig := hardenedFixture(t, 100)
	var buf bytes.Buffer
	if err := WriteColumnChunked(&buf, orig, 7); err != nil {
		t.Fatal(err)
	}
	loaded, bad, err := ReadColumn(&buf, "v")
	if err != nil || len(bad) != 0 {
		t.Fatalf("load: %v %v", err, bad)
	}
	for _, granularity := range []int{1, 3, 33, 100, 1000} {
		a, err := ColumnChunkCRCs(orig, granularity)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ColumnChunkCRCs(loaded, granularity)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) || len(a) != NumChunks(100, granularity) {
			t.Fatalf("granularity %d: %d vs %d digests", granularity, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("granularity %d chunk %d: %08x vs %08x", granularity, i, a[i], b[i])
			}
		}
	}
	if _, err := ColumnChunkCRCs(orig, 0); err == nil {
		t.Fatal("granularity 0 accepted")
	}
}

// TestWriteColumnChunkedRejectsBadGranularity pins the writer's
// granularity bounds.
func TestWriteColumnChunkedRejectsBadGranularity(t *testing.T) {
	c, _ := NewColumn("v", TinyInt)
	c.Append(1)
	var buf bytes.Buffer
	if err := WriteColumnChunked(&buf, c, 0); err == nil {
		t.Fatal("chunkRows 0 accepted")
	}
	if err := WriteColumnChunked(&buf, c, maxChunkRows+1); err == nil {
		t.Fatal("oversized chunkRows accepted")
	}
}

// TestPersistEmptyColumn round-trips a zero-row column: header + CRC
// only, no chunks.
func TestPersistEmptyColumn(t *testing.T) {
	c, _ := NewColumn("v", ShortInt)
	h, err := c.Harden(an.MustNew(63877, 16))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteColumn(&buf, h); err != nil {
		t.Fatal(err)
	}
	got, bad, err := ReadColumn(&buf, "v")
	if err != nil || len(bad) != 0 || got.Len() != 0 || got.Code() == nil {
		t.Fatalf("empty round trip: %v %v len=%d", err, bad, got.Len())
	}
}
