package storage

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"ahead/internal/an"
)

// hardenedFixture builds a hardened numeric column with a distinctive
// value pattern.
func hardenedFixture(t *testing.T, rows int) *Column {
	t.Helper()
	c, err := NewColumn("v", ShortInt)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < uint64(rows); i++ {
		c.Append(i * 13 % 50000)
	}
	h, err := c.Harden(an.MustNew(63877, 16))
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestHardenedTableRoundTrip saves a table mixing hardened integers,
// dictionary strings and hardened heap references, loads it back, and
// requires every value, code parameter and string to survive intact
// with nothing flagged.
func TestHardenedTableRoundTrip(t *testing.T) {
	tbl := NewTable("mini")
	num := hardenedFixture(t, 200)
	if err := tbl.AddColumn(num); err != nil {
		t.Fatal(err)
	}
	regions := []string{"ASIA", "EUROPE", "AMERICA", "AFRICA", "MIDDLE EAST"}
	prios := []string{"1-URGENT", "5-LOW", "3-MEDIUM", "2-HIGH", "4-NOT SPECIFIED"}
	regionVals := make([]string, num.Len())
	prioVals := make([]string, num.Len())
	for i := range regionVals {
		regionVals[i] = regions[i%len(regions)]
		prioVals[i] = prios[i%len(prios)]
	}
	region := NewStrColumn("region", regionVals)
	if err := tbl.AddColumn(region); err != nil {
		t.Fatal(err)
	}
	hs, err := NewHeapStrColumn("prio", prioVals)
	if err != nil {
		t.Fatal(err)
	}
	code, _ := LargestCodeChooser(48)
	hh, err := hs.Harden(code)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.AddColumn(hh); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	if err := SaveTable(dir, tbl); err != nil {
		t.Fatal(err)
	}
	got, bad, err := LoadTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("clean table flagged: %v", bad)
	}
	if got.Rows() != tbl.Rows() {
		t.Fatalf("rows %d vs %d", got.Rows(), tbl.Rows())
	}
	gn, err := got.Column("v")
	if err != nil {
		t.Fatal(err)
	}
	if gn.Code() == nil || gn.Code().A() != num.Code().A() || gn.Code().DataBits() != num.Code().DataBits() {
		t.Fatalf("hardened code lost: %v", gn.Code())
	}
	for i := 0; i < num.Len(); i++ {
		if gn.Value(i) != num.Value(i) {
			t.Fatalf("value %d: %d vs %d", i, gn.Value(i), num.Value(i))
		}
	}
	for _, name := range []string{"region", "prio"} {
		want, _ := tbl.Column(name)
		have, err := got.Column(name)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < want.Len(); i++ {
			ws, _ := want.Str(i)
			hs, err := have.Str(i)
			if err != nil || hs != ws {
				t.Fatalf("%s[%d]: %q vs %q (%v)", name, i, hs, ws, err)
			}
		}
	}
}

// sweepOutcome classifies one corrupted load: the file either fails to
// load, loads with corruption reported, or loads bit-identical in its
// decoded contents (the flip hit dead bits). What must never happen is
// a clean load of different data.
func sweepOutcome(t *testing.T, raw []byte, orig *Column, where string) {
	t.Helper()
	got, bad, err := ReadColumn(bytes.NewReader(raw), orig.Name())
	if err != nil || len(bad) > 0 {
		return // detected: error or flagged positions
	}
	if got.Len() != orig.Len() {
		t.Fatalf("%s: silent load with %d rows instead of %d", where, got.Len(), orig.Len())
	}
	for i := 0; i < orig.Len(); i++ {
		if got.Value(i) != orig.Value(i) {
			t.Fatalf("%s: silent load with value %d changed (%d vs %d)",
				where, i, got.Value(i), orig.Value(i))
		}
	}
	if (got.Code() == nil) != (orig.Code() == nil) {
		t.Fatalf("%s: silent load changed hardening", where)
	}
}

// TestPersistFaultSweepHardened flips every bit of every byte of a
// serialized hardened column - magic, header, payload, fold - and
// requires each load to error, to report the corruption, or to decode
// identically. No flip may silently load different data.
func TestPersistFaultSweepHardened(t *testing.T) {
	orig := hardenedFixture(t, 64)
	var buf bytes.Buffer
	if err := WriteColumn(&buf, orig); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for off := 0; off < len(clean); off++ {
		for bit := 0; bit < 8; bit++ {
			raw := bytes.Clone(clean)
			raw[off] ^= 1 << bit
			sweepOutcome(t, raw, orig, byteLabel(off, bit))
		}
	}
}

// TestPersistFaultSweepUnprotected is the same sweep over an
// unprotected column: the load-time fold (or a parse error) must catch
// every consequential flip.
func TestPersistFaultSweepUnprotected(t *testing.T) {
	orig, err := NewColumn("v", Int)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 64; i++ {
		orig.Append(i * 999)
	}
	var buf bytes.Buffer
	if err := WriteColumn(&buf, orig); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for off := 0; off < len(clean); off++ {
		for bit := 0; bit < 8; bit++ {
			raw := bytes.Clone(clean)
			raw[off] ^= 1 << bit
			sweepOutcome(t, raw, orig, byteLabel(off, bit))
		}
	}
}

// TestPersistFaultSweepDict sweeps a dictionary column: the fold now
// covers the dictionary bytes, so a flipped string byte must fail the
// load instead of silently renaming a value.
func TestPersistFaultSweepDict(t *testing.T) {
	orig := NewStrColumn("region", []string{"ASIA", "EUROPE", "ASIA", "AMERICA", "AFRICA", "EUROPE"})
	var buf bytes.Buffer
	if err := WriteColumn(&buf, orig); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for off := 0; off < len(clean); off++ {
		for bit := 0; bit < 8; bit++ {
			raw := bytes.Clone(clean)
			raw[off] ^= 1 << bit
			got, bad, err := ReadColumn(bytes.NewReader(raw), orig.Name())
			if err != nil || len(bad) > 0 {
				continue
			}
			if got.Len() != orig.Len() {
				t.Fatalf("%s: silent load with %d rows", byteLabel(off, bit), got.Len())
			}
			for i := 0; i < orig.Len(); i++ {
				want, _ := orig.Str(i)
				have, serr := got.Str(i)
				if serr != nil || have != want {
					t.Fatalf("%s: silent load renamed row %d: %q vs %q (%v)",
						byteLabel(off, bit), i, have, want, serr)
				}
			}
		}
	}
}

// TestPersistTruncationSweep cuts the serialized column at every
// prefix length and requires each truncated load to fail - the fold
// trails the payload, so no strict prefix parses.
func TestPersistTruncationSweep(t *testing.T) {
	orig := hardenedFixture(t, 64)
	var buf bytes.Buffer
	if err := WriteColumn(&buf, orig); err != nil {
		t.Fatal(err)
	}
	clean := buf.Bytes()
	for n := 0; n < len(clean); n++ {
		if _, _, err := ReadColumn(bytes.NewReader(clean[:n]), "v"); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded without error", n, len(clean))
		}
	}
}

// TestLoadTableFaultCases exercises the table-level wrappers: a
// corrupted magic, a truncated file, and a flipped payload bit must
// error or report - and the pre-corruption table must load clean.
func TestLoadTableFaultCases(t *testing.T) {
	tbl := NewTable("mini")
	if err := tbl.AddColumn(hardenedFixture(t, 128)); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := SaveTable(dir, tbl); err != nil {
		t.Fatal(err)
	}
	file := filepath.Join(dir, "v.col")
	clean, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}

	check := func(name string, mutate func([]byte) []byte, wantDetect bool) {
		t.Helper()
		if err := os.WriteFile(file, mutate(bytes.Clone(clean)), 0o644); err != nil {
			t.Fatal(err)
		}
		_, bad, err := LoadTable(dir)
		if err == nil && len(bad) == 0 {
			t.Fatalf("%s: table loaded silently", name)
		}
		if wantDetect && err != nil {
			t.Fatalf("%s: want value-granular detection, got refusal: %v", name, err)
		}
		if err := os.WriteFile(file, clean, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	check("corrupted magic", func(b []byte) []byte { b[0] ^= 0xFF; return b }, false)
	check("truncated file", func(b []byte) []byte { return b[:len(b)-9] }, false)
	check("flipped payload bit", func(b []byte) []byte { b[len(b)-100] ^= 1 << 4; return b }, true)

	if _, bad, err := LoadTable(dir); err != nil || len(bad) != 0 {
		t.Fatalf("restored table no longer loads clean: %v %v", err, bad)
	}
}

func byteLabel(off, bit int) string {
	return "byte " + itoa(off) + " bit " + itoa(bit)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
