package storage

import (
	"bytes"
	"sync"
	"testing"

	"ahead/internal/an"
)

// fuzzFixture is the canonical column the decoder fuzzer mutates: a
// multi-chunk hardened column and its clean serialization. Built once -
// the fuzz engine calls the target millions of times.
var fuzzFixture = sync.OnceValues(func() (*Column, []byte) {
	c, err := NewColumn("v", ShortInt)
	if err != nil {
		panic(err)
	}
	for i := uint64(0); i < 100; i++ {
		c.Append(i * 13 % 50000)
	}
	h, err := c.Harden(an.MustNew(63877, 16))
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if err := WriteColumnChunked(&buf, h, 32); err != nil {
		panic(err)
	}
	return h, buf.Bytes()
})

// FuzzSnapshotDecode feeds the column decoder arbitrary bytes, two ways:
// directly (the input *is* the file), and as an XOR fault mask over a
// canonical valid snapshot (the input *corrupts* the file). Either way
// the decoder must return a clean error, report repairable positions, or
// decode data identical to the original - never panic, never hang on a
// huge claimed allocation, never silently load different values. This is
// the detect-or-reject contract of the scan kernels, extended to data at
// rest.
func FuzzSnapshotDecode(f *testing.F) {
	_, clean := fuzzFixture()
	f.Add([]byte{})
	f.Add([]byte("not a column"))
	f.Add(bytes.Clone(clean))
	f.Add(bytes.Clone(clean[:len(clean)/2]))
	f.Add(bytes.Clone(clean[:9]))
	mutated := bytes.Clone(clean)
	mutated[len(mutated)-3] ^= 0x20
	f.Add(mutated)
	onebit := make([]byte, len(clean))
	onebit[15] = 0x04
	f.Add(onebit)
	f.Fuzz(func(t *testing.T, data []byte) {
		orig, clean := fuzzFixture()

		// Arbitrary bytes as a whole file: must not panic; a clean load
		// of a hardened column must be internally consistent (every code
		// word valid, packed mirror in lockstep).
		if got, bad, err := ReadColumn(bytes.NewReader(data), "v"); err == nil {
			check, cerr := []uint64(nil), error(nil)
			if got.Code() != nil {
				check, cerr = got.CheckAll()
				if cerr != nil {
					t.Fatalf("loaded column fails CheckAll: %v", cerr)
				}
			}
			if len(check) != len(bad) {
				t.Fatalf("load reported %d bad positions, CheckAll finds %d", len(bad), len(check))
			}
		}

		// The same bytes as an XOR fault mask over a valid snapshot: the
		// sweep property, driven by the fuzzer instead of exhaustively.
		raw := bytes.Clone(clean)
		for i := 0; i < len(raw) && i < len(data); i++ {
			raw[i] ^= data[i]
		}
		got, bad, err := ReadColumn(bytes.NewReader(raw), "v")
		if err != nil || len(bad) > 0 {
			return // detected: refusal or repairable positions
		}
		if got.Len() != orig.Len() {
			t.Fatalf("silent load with %d rows instead of %d", got.Len(), orig.Len())
		}
		for i := 0; i < orig.Len(); i++ {
			if got.Value(i) != orig.Value(i) {
				t.Fatalf("silent load changed value %d (%d vs %d)", i, got.Value(i), orig.Value(i))
			}
		}
		if (got.Code() == nil) != (orig.Code() == nil) {
			t.Fatal("silent load changed hardening")
		}
	})
}
