package storage

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// SaveTable persists every column of the table into dir: one .col file
// per column plus a MANIFEST recording the table name and column order.
func SaveTable(dir string, t *Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	manifest, err := os.Create(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		return err
	}
	defer manifest.Close()
	mw := bufio.NewWriter(manifest)
	fmt.Fprintf(mw, "table %s\n", t.Name())
	for _, c := range t.Columns() {
		if strings.ContainsAny(c.Name(), "/\\\n") {
			return fmt.Errorf("storage: column name %q not file-safe", c.Name())
		}
		f, err := os.Create(filepath.Join(dir, c.Name()+".col"))
		if err != nil {
			return err
		}
		err = WriteColumn(f, c)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(mw, "column %s\n", c.Name())
	}
	if err := mw.Flush(); err != nil {
		return err
	}
	return nil
}

// LoadTable reads a table written by SaveTable. The returned map carries,
// per hardened column, the positions that failed their load-time AN
// verification (empty entries are omitted); callers decide whether to
// repair or refuse. Unprotected columns failing their checksum abort the
// load - without value-granular detection there is nothing to repair.
func LoadTable(dir string) (*Table, map[string][]uint64, error) {
	manifest, err := os.Open(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		return nil, nil, err
	}
	defer manifest.Close()
	var tableName string
	var columns []string
	sc := bufio.NewScanner(manifest)
	for sc.Scan() {
		fields := strings.SplitN(sc.Text(), " ", 2)
		if len(fields) != 2 {
			return nil, nil, fmt.Errorf("storage: malformed manifest line %q", sc.Text())
		}
		switch fields[0] {
		case "table":
			tableName = fields[1]
		case "column":
			columns = append(columns, fields[1])
		default:
			return nil, nil, fmt.Errorf("storage: unknown manifest directive %q", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if tableName == "" {
		return nil, nil, fmt.Errorf("storage: manifest names no table")
	}
	t := NewTable(tableName)
	corrupt := make(map[string][]uint64)
	for _, name := range columns {
		f, err := os.Open(filepath.Join(dir, name+".col"))
		if err != nil {
			return nil, nil, err
		}
		col, bad, err := ReadColumn(f, name)
		f.Close()
		if err != nil {
			return nil, nil, fmt.Errorf("storage: loading %s: %w", name, err)
		}
		if len(bad) > 0 {
			corrupt[name] = bad
		}
		if err := t.AddColumn(col); err != nil {
			return nil, nil, err
		}
	}
	return t, corrupt, nil
}
