package storage

import (
	"os"
	"path/filepath"
	"testing"

	"ahead/internal/an"
)

func TestSaveLoadTable(t *testing.T) {
	dir := t.TempDir()
	tb := NewTable("orders")
	qty, _ := NewColumn("qty", TinyInt)
	price, _ := NewColumn("price", Int)
	for i := uint64(0); i < 200; i++ {
		qty.Append(i % 50)
		price.Append(i * 31)
	}
	region := NewStrColumn("region", []string{"ASIA", "EUROPE"}) // 2 rows
	_ = region
	for _, c := range []*Column{qty, price} {
		if err := tb.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	hard, err := tb.Harden(LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveTable(dir, hard); err != nil {
		t.Fatal(err)
	}
	got, corrupt, err := LoadTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt) != 0 {
		t.Fatalf("clean table reported %v", corrupt)
	}
	if got.Name() != "orders" || got.Rows() != 200 || len(got.Columns()) != 2 {
		t.Fatalf("reloaded table %s/%d/%d", got.Name(), got.Rows(), len(got.Columns()))
	}
	for i := 0; i < 200; i++ {
		if got.MustColumn("qty").Value(i) != uint64(i%50) {
			t.Fatalf("qty %d differs", i)
		}
		if got.MustColumn("price").Value(i) != uint64(i*31) {
			t.Fatalf("price %d differs", i)
		}
	}
	if got.MustColumn("qty").Code().A() != hard.MustColumn("qty").Code().A() {
		t.Fatal("code lost across the round trip")
	}
}

func TestLoadTableSurfacesAtRestCorruption(t *testing.T) {
	dir := t.TempDir()
	tb := NewTable("t")
	v, _ := NewColumn("v", ShortInt)
	for i := uint64(0); i < 100; i++ {
		v.Append(i)
	}
	h, _ := v.Harden(an.MustNew(63877, 16))
	if err := tb.AddColumn(h); err != nil {
		t.Fatal(err)
	}
	if err := SaveTable(dir, tb); err != nil {
		t.Fatal(err)
	}
	// Flip payload bits in the stored file.
	path := filepath.Join(dir, "v.col")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-10] ^= 1 << 2
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, corrupt, err := LoadTable(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(corrupt["v"]) != 1 {
		t.Fatalf("corrupt map %v", corrupt)
	}
	if got.Rows() != 100 {
		t.Fatal("table truncated")
	}
}

func TestLoadTableErrors(t *testing.T) {
	if _, _, err := LoadTable(t.TempDir()); err == nil {
		t.Error("missing manifest must error")
	}
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "MANIFEST"), []byte("bogus\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadTable(dir); err == nil {
		t.Error("malformed manifest must error")
	}
	dir2 := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir2, "MANIFEST"), []byte("table t\ncolumn ghost\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadTable(dir2); err == nil {
		t.Error("missing column file must error")
	}
}
