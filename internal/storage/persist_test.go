package storage

import (
	"bytes"
	"strings"
	"testing"

	"ahead/internal/an"
)

func roundTrip(t *testing.T, c *Column) (*Column, []uint64) {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteColumn(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, bad, err := ReadColumn(&buf, c.Name())
	if err != nil {
		t.Fatal(err)
	}
	return got, bad
}

func TestPersistRoundTripAllKinds(t *testing.T) {
	// Integer widths.
	for _, kind := range []Kind{TinyInt, ShortInt, Int, BigInt} {
		c, _ := NewColumn("v", kind)
		for i := uint64(0); i < 1000; i++ {
			c.Append(i * 37)
		}
		got, bad := roundTrip(t, c)
		if len(bad) != 0 || got.Len() != c.Len() || got.Kind() != kind || got.Width() != c.Width() {
			t.Fatalf("%v: bad=%v len=%d", kind, bad, got.Len())
		}
		for i := 0; i < c.Len(); i++ {
			if got.Get(i) != c.Get(i) {
				t.Fatalf("%v: value %d differs", kind, i)
			}
		}
	}
	// Hardened.
	c, _ := NewColumn("v", ShortInt)
	for i := uint64(0); i < 500; i++ {
		c.Append(i)
	}
	h, err := c.Harden(an.MustNew(63877, 16))
	if err != nil {
		t.Fatal(err)
	}
	got, bad := roundTrip(t, h)
	if len(bad) != 0 {
		t.Fatalf("clean hardened column reported %v", bad)
	}
	if got.Code() == nil || got.Code().A() != 63877 || got.Code().DataBits() != 16 {
		t.Fatalf("code lost: %v", got.Code())
	}
	for i := 0; i < h.Len(); i++ {
		if got.Value(i) != uint64(i) {
			t.Fatalf("hardened value %d differs", i)
		}
	}
	// Dictionary strings.
	s := NewStrColumn("region", []string{"ASIA", "EUROPE", "ASIA", "AMERICA"})
	got, _ = roundTrip(t, s)
	for i := 0; i < s.Len(); i++ {
		want, _ := s.Str(i)
		have, err := got.Str(i)
		if err != nil || have != want {
			t.Fatalf("dict string %d: %q vs %q", i, have, want)
		}
	}
	// Heap strings, hardened references.
	hs, err := NewHeapStrColumn("prio", []string{"1-URGENT", "5-LOW", "3-MEDIUM"})
	if err != nil {
		t.Fatal(err)
	}
	code, _ := LargestCodeChooser(48)
	hh, err := hs.Harden(code)
	if err != nil {
		t.Fatal(err)
	}
	got, bad = roundTrip(t, hh)
	if len(bad) != 0 {
		t.Fatalf("heap refs flagged: %v", bad)
	}
	for i := 0; i < hs.Len(); i++ {
		want, _ := hs.Str(i)
		have, err := got.Str(i)
		if err != nil || have != want {
			t.Fatalf("heap string %d: %q vs %q", i, have, want)
		}
	}
}

func TestPersistDetectsAtRestCorruptionHardened(t *testing.T) {
	c, _ := NewColumn("v", ShortInt)
	for i := uint64(0); i < 300; i++ {
		c.Append(i)
	}
	h, _ := c.Harden(an.MustNew(63877, 16))
	var buf bytes.Buffer
	if err := WriteColumn(&buf, h); err != nil {
		t.Fatal(err)
	}
	// Flip a payload bit on "disk": past the 28-byte header, at an
	// arbitrary payload position.
	raw := buf.Bytes()
	raw[len(raw)-100] ^= 1 << 3
	got, bad, err := ReadColumn(bytes.NewReader(raw), "v")
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 {
		t.Fatalf("at-rest flip: %d positions flagged, want 1", len(bad))
	}
	// The rest of the column is usable: value-granular detection means
	// the caller can repair just the flagged position.
	if got.Len() != 300 {
		t.Fatal("column truncated")
	}
}

func TestPersistDetectsAtRestCorruptionUnprotected(t *testing.T) {
	c, _ := NewColumn("v", Int)
	for i := uint64(0); i < 300; i++ {
		c.Append(i * 999)
	}
	var buf bytes.Buffer
	if err := WriteColumn(&buf, c); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-50] ^= 1 << 5
	if _, _, err := ReadColumn(bytes.NewReader(raw), "v"); err == nil {
		t.Fatal("unprotected corruption must fail the load-time checksum")
	}
	// And the coarse granularity is the contrast with AHEAD: the fold
	// says *that* something broke, not *where*.
}

func TestPersistRejectsGarbage(t *testing.T) {
	if _, _, err := ReadColumn(strings.NewReader("not a column"), "x"); err == nil {
		t.Fatal("bad magic must error")
	}
	if _, _, err := ReadColumn(strings.NewReader(""), "x"); err == nil {
		t.Fatal("empty input must error")
	}
	// Header with an invalid width.
	var buf bytes.Buffer
	buf.Write(persistMagic[:])
	buf.Write([]byte{0, 3}) // kind, width=3 (invalid)
	buf.Write(make([]byte, 18))
	if _, _, err := ReadColumn(bytes.NewReader(buf.Bytes()), "x"); err == nil {
		t.Fatal("invalid width must error")
	}
	// Truncated payload.
	c, _ := NewColumn("v", Int)
	c.Append(1)
	c.Append(2)
	var full bytes.Buffer
	if err := WriteColumn(&full, c); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadColumn(bytes.NewReader(full.Bytes()[:full.Len()-6]), "v"); err == nil {
		t.Fatal("truncated file must error")
	}
}
