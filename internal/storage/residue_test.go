package storage

import (
	"sync"
	"testing"

	"ahead/internal/an"
)

func newPlainColumn(t *testing.T, name string, vals []uint64) *Column {
	t.Helper()
	c, err := NewColumn(name, Int)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		c.Append(v)
	}
	return c
}

func TestHardenResidueRoundTrip(t *testing.T) {
	vals := []uint64{0, 1, 255, 65535, 1 << 20, 1<<32 - 1}
	c := newPlainColumn(t, "v", vals)
	rc, err := c.HardenResidue(8)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.IsResidueHardened() || rc.IsHardened() {
		t.Fatal("residue column misreports its hardening")
	}
	if rc.ResidueCode().CheckBits() != 8 {
		t.Fatalf("check bits = %d", rc.ResidueCode().CheckBits())
	}
	for i, v := range vals {
		if rc.Get(i) != v || rc.Value(i) != v {
			t.Fatalf("value %d changed: %d", i, rc.Get(i))
		}
	}
	if bad, err := rc.ResidueCheckAll(); err != nil || len(bad) != 0 {
		t.Fatalf("clean column: bad=%v err=%v", bad, err)
	}
	plain, err := rc.DropResidue()
	if err != nil {
		t.Fatal(err)
	}
	if plain.IsResidueHardened() {
		t.Fatal("DropResidue kept the sidecar")
	}
	for i, v := range vals {
		if plain.Get(i) != v {
			t.Fatalf("dropped value %d changed", i)
		}
	}
}

func TestResidueDetectsCorruptionButSetRefreshes(t *testing.T) {
	c := newPlainColumn(t, "v", []uint64{10, 20, 30, 40})
	rc, err := c.HardenResidue(6)
	if err != nil {
		t.Fatal(err)
	}
	rc.Corrupt(2, 1<<4)
	bad, err := rc.ResidueCheckAll()
	if err != nil || len(bad) != 1 || bad[0] != 2 {
		t.Fatalf("bad=%v err=%v, want [2]", bad, err)
	}
	// A legitimate update must refresh the check word.
	rc.Set(2, 31)
	if bad, _ := rc.ResidueCheckAll(); len(bad) != 0 {
		t.Fatalf("Set left a stale check: %v", bad)
	}
	rc.Append(50)
	if rc.Get(4) != 50 {
		t.Fatalf("append stored %d", rc.Get(4))
	}
	if bad, _ := rc.ResidueCheckAll(); len(bad) != 0 {
		t.Fatalf("Append left a stale check: %v", bad)
	}
}

func TestHardenResidueRejectsANColumns(t *testing.T) {
	c := newPlainColumn(t, "v", []uint64{1, 2, 3})
	hc, err := c.Harden(an.MustNew(233, 32))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hc.HardenResidue(8); err == nil {
		t.Fatal("HardenResidue accepted an AN-hardened column")
	}
	if _, err := c.ResidueCheckAll(); err == nil {
		t.Fatal("ResidueCheckAll accepted a plain column")
	}
}

func TestResidueColumnPromotesToAN(t *testing.T) {
	c := newPlainColumn(t, "v", []uint64{7, 8, 9})
	rc, err := c.HardenResidue(4)
	if err != nil {
		t.Fatal(err)
	}
	hc, err := rc.Harden(an.MustNew(233, 32))
	if err != nil {
		t.Fatal(err)
	}
	if !hc.IsHardened() || hc.IsResidueHardened() {
		t.Fatal("promotion produced a mixed column")
	}
	for i := 0; i < 3; i++ {
		if hc.Value(i) != rc.Get(i) {
			t.Fatalf("promoted value %d = %d", i, hc.Value(i))
		}
	}
}

func TestReplaceColumnSwapsAtomically(t *testing.T) {
	tab := NewTable("t")
	if err := tab.AddColumn(newPlainColumn(t, "a", []uint64{1, 2, 3})); err != nil {
		t.Fatal(err)
	}
	old := tab.MustColumn("a")
	repl, err := old.HardenResidue(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.ReplaceColumn(repl); err != nil {
		t.Fatal(err)
	}
	if got := tab.MustColumn("a"); got != repl {
		t.Fatal("byName lookup did not see the replacement")
	}
	if cols := tab.Columns(); len(cols) != 1 || cols[0] != repl {
		t.Fatal("Columns() did not see the replacement")
	}
	if old.IsResidueHardened() {
		t.Fatal("swap mutated the old column")
	}

	// Mismatched name or length must be refused.
	other := newPlainColumn(t, "b", []uint64{1, 2, 3})
	if err := tab.ReplaceColumn(other); err == nil {
		t.Fatal("replaced a column that does not exist")
	}
	short := newPlainColumn(t, "a", []uint64{1})
	if err := tab.ReplaceColumn(short); err == nil {
		t.Fatal("replaced with a shorter column")
	}
}

func TestReplaceColumnConcurrentReaders(t *testing.T) {
	tab := NewTable("t")
	vals := make([]uint64, 4096)
	for i := range vals {
		vals[i] = uint64(i)
	}
	if err := tab.AddColumn(newPlainColumn(t, "a", vals)); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c := tab.MustColumn("a")
				for i := 0; i < c.Len(); i += 512 {
					if c.Get(i) != uint64(i) {
						panic("torn read")
					}
				}
				for range tab.Columns() {
				}
			}
		}()
	}
	for k := 0; k < 50; k++ {
		repl, err := tab.MustColumn("a").HardenResidue(8)
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.ReplaceColumn(repl); err != nil {
			t.Fatal(err)
		}
		plain, err := repl.DropResidue()
		if err != nil {
			t.Fatal(err)
		}
		if err := tab.ReplaceColumn(plain); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
