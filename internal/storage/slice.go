package storage

import "fmt"

// Slice returns a new table holding the given rows of t, in the given
// order. Columns keep their name, kind, physical width, code,
// dictionary and string heap (dictionaries and heaps are immutable and
// shared, exactly as Replicate shares them), so a slice of a table is
// schema-compatible with the original - the property the cluster layer
// relies on when every shard loads the same generated data and keeps
// only its hash-assigned rows.
func (t *Table) Slice(rows []int) (*Table, error) {
	n := t.Rows()
	out := NewTable(t.name)
	for _, c := range t.Columns() {
		nc := &Column{name: c.name, kind: c.kind, width: c.width, code: c.code, dict: c.dict, heap: c.heap}
		nc.grow(len(rows))
		for i, r := range rows {
			if r < 0 || r >= n {
				return nil, fmt.Errorf("storage: slice row %d beyond table %q (%d rows)", r, t.name, n)
			}
			nc.setU64(i, c.Get(r))
		}
		nc.initPacked()
		if err := out.AddColumn(nc); err != nil {
			return nil, err
		}
	}
	return out, nil
}
