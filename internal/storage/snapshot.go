package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"ahead/internal/an"
)

// ColumnSnapshot is a lazy reader over one serialized column file: it
// parses and verifies the metadata up front, then serves individual
// chunks on demand by offset arithmetic - the header pins rows,
// chunkRows and width, so chunk i's position is implied and a repair
// path can pull one flipped chunk without streaming the rest of the
// column through memory.
type ColumnSnapshot struct {
	f    *os.File
	name string
	meta *colMeta
}

// OpenColumnSnapshot opens a column file written by WriteColumn and
// verifies its header, dictionary, and heap sections. Chunk payloads are
// not touched until ReadChunk.
func OpenColumnSnapshot(path, name string) (*ColumnSnapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	m, err := readColumnMeta(bufio.NewReader(f))
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: snapshot %s: %w", path, err)
	}
	return &ColumnSnapshot{f: f, name: name, meta: m}, nil
}

// Close releases the underlying file.
func (s *ColumnSnapshot) Close() error { return s.f.Close() }

// Name returns the column name the snapshot was opened under.
func (s *ColumnSnapshot) Name() string { return s.name }

// Kind returns the column kind recorded in the header.
func (s *ColumnSnapshot) Kind() Kind { return s.meta.kind }

// Code returns the AN code recorded in the header, or nil for an
// unprotected column.
func (s *ColumnSnapshot) Code() *an.Code { return s.meta.code }

// Rows returns the row count recorded in the header.
func (s *ColumnSnapshot) Rows() int { return s.meta.rows }

// ChunkRows returns the chunk granularity the file was written with.
func (s *ColumnSnapshot) ChunkRows() int { return s.meta.chunkRows }

// Chunks returns the number of chunks in the file.
func (s *ColumnSnapshot) Chunks() int { return NumChunks(s.meta.rows, s.meta.chunkRows) }

// chunkSpan returns the offset and row count of chunk i. Every chunk
// before the last is full, so the offset is pure arithmetic.
func (s *ColumnSnapshot) chunkSpan(i int) (off int64, rowsIn int, err error) {
	if i < 0 || i >= s.Chunks() {
		return 0, 0, fmt.Errorf("storage: snapshot %q has no chunk %d", s.name, i)
	}
	full := int64(s.meta.chunkRows)*int64(s.meta.width) + 4
	off = s.meta.dataOff + int64(i)*full
	rowsIn = min(s.meta.rows-i*s.meta.chunkRows, s.meta.chunkRows)
	return off, rowsIn, nil
}

// ReadChunk reads chunk i, verifies it against its stored CRC, and
// returns the raw physical words (code words for hardened columns - the
// caller AN-verifies them on receipt, the same discipline as the
// anti-entropy wire).
func (s *ColumnSnapshot) ReadChunk(i int) ([]uint64, error) {
	off, rowsIn, err := s.chunkSpan(i)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, rowsIn*s.meta.width+4)
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return nil, fmt.Errorf("storage: snapshot %q chunk %d: %w", s.name, i, err)
	}
	payload, stored := buf[:len(buf)-4], binary.LittleEndian.Uint32(buf[len(buf)-4:])
	if crc32.ChecksumIEEE(payload) != stored {
		return nil, fmt.Errorf("storage: snapshot %q chunk %d failed its CRC", s.name, i)
	}
	words := make([]uint64, rowsIn)
	for j := range words {
		switch s.meta.width {
		case 1:
			words[j] = uint64(payload[j])
		case 2:
			words[j] = uint64(binary.LittleEndian.Uint16(payload[j*2:]))
		case 4:
			words[j] = uint64(binary.LittleEndian.Uint32(payload[j*4:]))
		default:
			words[j] = binary.LittleEndian.Uint64(payload[j*8:])
		}
	}
	return words, nil
}

// ReadRows reads rows [start, start+n), CRC-verifying every chunk it
// touches. Repair sources use it to serve requests at a chunk
// granularity different from the file's own.
func (s *ColumnSnapshot) ReadRows(start, n int) ([]uint64, error) {
	if start < 0 || n < 0 || start+n > s.meta.rows {
		return nil, fmt.Errorf("storage: snapshot %q rows [%d, %d) out of range (%d rows)", s.name, start, start+n, s.meta.rows)
	}
	out := make([]uint64, 0, n)
	for got := 0; got < n; {
		pos := start + got
		chunk := pos / s.meta.chunkRows
		words, err := s.ReadChunk(chunk)
		if err != nil {
			return nil, err
		}
		lo := pos - chunk*s.meta.chunkRows
		hi := min(len(words), lo+(n-got))
		out = append(out, words[lo:hi]...)
		got += hi - lo
	}
	return out, nil
}

// StoredCRCs returns the per-chunk CRCs recorded in the file, without
// reading payloads - the digest list a replica publishes for
// anti-entropy comparison. The CRCs are trusted only for routing: a
// fetched chunk is still CRC- and AN-verified on receipt.
func (s *ColumnSnapshot) StoredCRCs() ([]uint32, error) {
	crcs := make([]uint32, s.Chunks())
	var b [4]byte
	for i := range crcs {
		off, rowsIn, err := s.chunkSpan(i)
		if err != nil {
			return nil, err
		}
		if _, err := s.f.ReadAt(b[:], off+int64(rowsIn*s.meta.width)); err != nil {
			return nil, fmt.Errorf("storage: snapshot %q chunk %d CRC: %w", s.name, i, err)
		}
		crcs[i] = binary.LittleEndian.Uint32(b[:])
	}
	return crcs, nil
}
