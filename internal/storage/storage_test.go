package storage

import (
	"testing"

	"ahead/internal/an"
)

func TestKindProperties(t *testing.T) {
	cases := []struct {
		k        Kind
		str      string
		hardened bool
		bits     uint
		width    int
	}{
		{TinyInt, "tinyint", false, 8, 1},
		{ShortInt, "shortint", false, 16, 2},
		{Int, "int", false, 32, 4},
		{BigInt, "bigint", false, 64, 8},
		{ResTiny, "restiny", true, 8, 0},
		{ResShort, "resshort", true, 16, 0},
		{ResInt, "resint", true, 32, 0},
		{ResBig, "resbig", true, 48, 0},
		{Str, "string", false, 0, 0},
	}
	for _, tc := range cases {
		if tc.k.String() != tc.str {
			t.Errorf("%v: name %q, want %q", tc.k, tc.k.String(), tc.str)
		}
		if tc.k.IsHardened() != tc.hardened {
			t.Errorf("%v: hardened %v", tc.k, tc.k.IsHardened())
		}
		if tc.k.DataBits() != tc.bits {
			t.Errorf("%v: bits %d, want %d", tc.k, tc.k.DataBits(), tc.bits)
		}
		if tc.k.NaturalWidth() != tc.width {
			t.Errorf("%v: width %d, want %d", tc.k, tc.k.NaturalWidth(), tc.width)
		}
	}
}

func TestKindMapping(t *testing.T) {
	pairs := [][2]Kind{{TinyInt, ResTiny}, {ShortInt, ResShort}, {Int, ResInt}, {BigInt, ResBig}}
	for _, p := range pairs {
		h, err := p[0].Hardened()
		if err != nil || h != p[1] {
			t.Errorf("%v.Hardened() = %v, %v", p[0], h, err)
		}
		s, err := p[1].Softened()
		if err != nil || s != p[0] {
			t.Errorf("%v.Softened() = %v, %v", p[1], s, err)
		}
	}
	if _, err := Str.Hardened(); err == nil {
		t.Error("Str.Hardened must error")
	}
	if _, err := Int.Softened(); err == nil {
		t.Error("Int.Softened must error")
	}
}

func TestKindForBits(t *testing.T) {
	for _, tc := range []struct {
		bits uint
		want Kind
	}{{1, TinyInt}, {8, TinyInt}, {9, ShortInt}, {16, ShortInt}, {17, Int}, {32, Int}, {33, BigInt}, {64, BigInt}} {
		got, err := KindForBits(tc.bits)
		if err != nil || got != tc.want {
			t.Errorf("KindForBits(%d) = %v, %v; want %v", tc.bits, got, err, tc.want)
		}
	}
	if _, err := KindForBits(0); err == nil {
		t.Error("KindForBits(0) must error")
	}
	if _, err := KindForBits(65); err == nil {
		t.Error("KindForBits(65) must error")
	}
}

func TestDictBasics(t *testing.T) {
	d := NewDict([]string{"EUROPE", "ASIA", "AMERICA", "ASIA", "AFRICA", "MIDDLE EAST"})
	if d.Size() != 5 {
		t.Fatalf("size = %d, want 5 (duplicates removed)", d.Size())
	}
	// Codes are sorted, so order is AFRICA < AMERICA < ASIA < EUROPE < MIDDLE EAST.
	c, ok := d.Code("AFRICA")
	if !ok || c != 0 {
		t.Errorf("Code(AFRICA) = %d, %v", c, ok)
	}
	if _, ok := d.Code("ANTARCTICA"); ok {
		t.Error("unknown value must not resolve")
	}
	v, err := d.Value(3)
	if err != nil || v != "EUROPE" {
		t.Errorf("Value(3) = %q, %v", v, err)
	}
	if _, err := d.Value(99); err == nil {
		t.Error("out-of-range code must error")
	}
	if d.Bytes() <= 0 {
		t.Error("dictionary must account its heap bytes")
	}
}

func TestDictRanges(t *testing.T) {
	var brands []string
	for i := 1; i <= 9; i++ {
		brands = append(brands, "MFGR#220"+string(rune('0'+i)))
	}
	brands = append(brands, "MFGR#2301", "MFGR#1101")
	d := NewDict(brands)
	lo, hi, ok := d.CodeRange("MFGR#2201", "MFGR#2208")
	if !ok || hi-lo != 7 {
		t.Errorf("CodeRange = [%d,%d] ok=%v, want 8 codes", lo, hi, ok)
	}
	lo, hi, ok = d.PrefixRange("MFGR#22")
	if !ok || hi-lo != 8 {
		t.Errorf("PrefixRange(MFGR#22) = [%d,%d] ok=%v, want 9 codes", lo, hi, ok)
	}
	if _, _, ok := d.CodeRange("ZZZ", "ZZZZ"); ok {
		t.Error("empty range must report !ok")
	}
	if _, _, ok := d.PrefixRange("XX"); ok {
		t.Error("unmatched prefix must report !ok")
	}
}

func TestColumnAppendGetWidths(t *testing.T) {
	for _, kind := range []Kind{TinyInt, ShortInt, Int, BigInt} {
		c, err := NewColumn("c", kind)
		if err != nil {
			t.Fatal(err)
		}
		max := uint64(1)<<kind.DataBits() - 1
		if kind == BigInt {
			max = ^uint64(0)
		}
		for _, v := range []uint64{0, 1, max / 2, max} {
			c.Append(v)
		}
		if c.Len() != 4 {
			t.Fatalf("%v: len %d", kind, c.Len())
		}
		if c.Bytes() != 4*kind.NaturalWidth() {
			t.Fatalf("%v: bytes %d", kind, c.Bytes())
		}
		if got := c.Get(3); got != max {
			t.Fatalf("%v: Get(3) = %d, want %d", kind, got, max)
		}
		if got := c.Value(3); got != max {
			t.Fatalf("%v: Value(3) = %d, want %d", kind, got, max)
		}
	}
}

func TestNewColumnRejectsSpecialKinds(t *testing.T) {
	if _, err := NewColumn("x", ResTiny); err == nil {
		t.Error("hardened kind must be rejected")
	}
	if _, err := NewColumn("x", Str); err == nil {
		t.Error("Str kind must be rejected")
	}
}

func TestHardenSoftenColumn(t *testing.T) {
	c, _ := NewColumn("qty", TinyInt)
	for v := uint64(0); v < 256; v++ {
		c.Append(v)
	}
	code := an.MustNew(233, 8)
	h, err := c.Harden(code)
	if err != nil {
		t.Fatal(err)
	}
	if h.Kind() != ResTiny || h.Width() != 2 {
		t.Fatalf("hardened kind=%v width=%d, want restiny/2", h.Kind(), h.Width())
	}
	if !h.IsHardened() || h.Code() != code {
		t.Fatal("hardened column must carry its code")
	}
	if h.Bytes() != 2*c.Bytes() {
		t.Fatalf("restiny bytes = %d, want doubled %d", h.Bytes(), 2*c.Bytes())
	}
	for i := 0; i < 256; i++ {
		if h.Value(i) != c.Get(i) {
			t.Fatalf("softened value at %d differs", i)
		}
	}
	if errs, err := h.CheckAll(); err != nil || len(errs) != 0 {
		t.Fatalf("clean hardened column: errs=%v err=%v", errs, err)
	}
	s, err := h.Soften()
	if err != nil {
		t.Fatal(err)
	}
	if s.Kind() != TinyInt || s.Width() != 1 {
		t.Fatalf("softened kind=%v width=%d", s.Kind(), s.Width())
	}
	for i := 0; i < 256; i++ {
		if s.Get(i) != c.Get(i) {
			t.Fatalf("soften(harden) differs at %d", i)
		}
	}
	// Double-hardening and softening unprotected columns are errors.
	if _, err := h.Harden(code); err == nil {
		t.Error("double hardening must error")
	}
	if _, err := c.Soften(); err == nil {
		t.Error("softening an unprotected column must error")
	}
	if _, err := c.CheckAll(); err == nil {
		t.Error("CheckAll on unprotected column must error")
	}
}

func TestHardenedColumnDetectsCorruption(t *testing.T) {
	c, _ := NewColumn("v", ShortInt)
	for v := uint64(0); v < 1000; v++ {
		c.Append(v * 13)
	}
	h, err := c.Harden(an.MustNew(63877, 16))
	if err != nil {
		t.Fatal(err)
	}
	h.Corrupt(123, 1<<7|1<<19)
	h.Corrupt(999, 1<<0)
	errs, err := h.CheckAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(errs) != 2 || errs[0] != 123 || errs[1] != 999 {
		t.Fatalf("CheckAll = %v, want [123 999]", errs)
	}
}

func TestHardenedAppendAndSet(t *testing.T) {
	c, _ := NewColumn("v", TinyInt)
	c.Append(10)
	h, _ := c.Harden(an.MustNew(29, 8))
	h.Append(20)
	h.Set(0, 11)
	if h.Value(0) != 11 || h.Value(1) != 20 {
		t.Fatalf("values = %d,%d", h.Value(0), h.Value(1))
	}
	if errs, _ := h.CheckAll(); len(errs) != 0 {
		t.Fatal("UDI operations must keep the column valid")
	}
}

func TestStrColumn(t *testing.T) {
	vals := []string{"ASIA", "EUROPE", "ASIA", "AMERICA"}
	c := NewStrColumn("region", vals)
	if c.Kind() != Str || c.Dict() == nil || c.Len() != 4 {
		t.Fatal("bad string column")
	}
	for i, v := range vals {
		got, err := c.Str(i)
		if err != nil || got != v {
			t.Fatalf("Str(%d) = %q, %v", i, got, err)
		}
	}
	// Harden the dictionary codes; strings still resolve.
	h, err := c.Harden(an.MustNew(233, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		got, err := h.Str(i)
		if err != nil || got != v {
			t.Fatalf("hardened Str(%d) = %q, %v", i, got, err)
		}
	}
	ic, _ := NewColumn("i", Int)
	if _, err := ic.Str(0); err == nil {
		t.Error("Str on non-dictionary column must error")
	}
}

func TestColumnReencode(t *testing.T) {
	c, _ := NewColumn("v", TinyInt)
	for v := uint64(0); v < 256; v++ {
		c.Append(v)
	}
	c1 := an.MustNew(29, 8)   // 13-bit code: width 2
	c2 := an.MustNew(233, 8)  // 16-bit code: width 2 (same physical width)
	c3 := an.MustNew(1939, 8) // 19-bit code: width 4
	h, _ := c.Harden(c1)
	same, err := h.Reencode(c2)
	if err != nil {
		t.Fatal(err)
	}
	if same != h {
		t.Fatal("same-width reencode must be in place")
	}
	if h.Code() != c2 {
		t.Fatal("code must be swapped")
	}
	for i := 0; i < 256; i++ {
		if h.Value(i) != uint64(i) {
			t.Fatalf("value %d corrupted by reencode", i)
		}
	}
	wider, err := h.Reencode(c3)
	if err != nil {
		t.Fatal(err)
	}
	if wider == h || wider.Width() != 4 {
		t.Fatalf("width-changing reencode must copy (width %d)", wider.Width())
	}
	if errs, _ := wider.CheckAll(); len(errs) != 0 {
		t.Fatal("reencoded column must be valid")
	}
	if _, err := c.Reencode(c2); err == nil {
		t.Error("reencode of unprotected column must error")
	}
}

func TestTableBasics(t *testing.T) {
	tb := NewTable("lineorder")
	qty, _ := NewColumn("quantity", TinyInt)
	price, _ := NewColumn("price", Int)
	for i := uint64(0); i < 100; i++ {
		qty.Append(i % 50)
		price.Append(i * 100)
	}
	if err := tb.AddColumn(qty); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddColumn(price); err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 100 {
		t.Fatalf("rows = %d", tb.Rows())
	}
	if tb.Bytes() != 100*1+100*4 {
		t.Fatalf("bytes = %d", tb.Bytes())
	}
	if _, err := tb.Column("quantity"); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Column("missing"); err == nil {
		t.Error("missing column must error")
	}
	if err := tb.AddColumn(qty); err == nil {
		t.Error("duplicate column must error")
	}
	short, _ := NewColumn("short", TinyInt)
	if err := tb.AddColumn(short); err == nil {
		t.Error("length mismatch must error")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustColumn must panic on missing name")
			}
		}()
		tb.MustColumn("nope")
	}()
}

func TestTableHardenAndReplicate(t *testing.T) {
	tb := NewTable("t")
	qty, _ := NewColumn("qty", TinyInt)
	price, _ := NewColumn("price", Int)
	region := NewStrColumn("region", []string{"ASIA", "EUROPE", "ASIA"})
	for i := uint64(0); i < 3; i++ {
		qty.Append(i)
		price.Append(i * 1000)
	}
	for _, c := range []*Column{qty, price, region} {
		if err := tb.AddColumn(c); err != nil {
			t.Fatal(err)
		}
	}
	h, err := tb.Harden(LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 3 {
		t.Fatalf("hardened rows = %d", h.Rows())
	}
	// restiny doubles, resint doubles: total data bytes double; the
	// string heap is shared and counted once on each side.
	if got, want := h.Bytes()-region.Dict().Bytes(), 2*(tb.Bytes()-region.Dict().Bytes()); got != want {
		t.Fatalf("hardened bytes = %d, want %d", got, want)
	}
	for _, c := range h.Columns() {
		if !c.IsHardened() {
			t.Fatalf("column %s not hardened", c.Name())
		}
		if errs, _ := c.CheckAll(); len(errs) != 0 {
			t.Fatalf("column %s invalid after hardening", c.Name())
		}
	}
	// The hardened quantity column must use the strongest restiny code.
	if got := h.MustColumn("qty").Code().A(); got != 233 {
		t.Fatalf("qty hardened with A=%d, want 233", got)
	}

	r, err := tb.Replicate()
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes() != tb.Bytes() || r.Rows() != tb.Rows() {
		t.Fatal("replica must match")
	}
	// Replicas are independent memory.
	r.MustColumn("qty").Set(0, 42)
	if tb.MustColumn("qty").Value(0) == 42 {
		t.Fatal("replica mutation leaked into the original")
	}
}

func TestMinBFWCodeChooser(t *testing.T) {
	choose := MinBFWCodeChooser(2)
	c, err := choose(8)
	if err != nil || c.A() != 29 {
		t.Fatalf("chooser(8) = %v, %v; want A=29", c, err)
	}
	c, err = choose(16)
	if err != nil || c.A() != 61 {
		t.Fatalf("chooser(16) = %v, %v; want A=61", c, err)
	}
	if _, err := LargestCodeChooser(50); err == nil {
		t.Error("LargestCodeChooser beyond 48 bits must error")
	}
	wide, err := LargestCodeChooser(48)
	if err != nil || wide.A() != 32417 {
		t.Fatalf("48-bit chooser: %v, %v", wide, err)
	}
}
