package storage

import (
	"fmt"
	"sync"

	"ahead/internal/an"
)

// Table groups equally long columns, DSM-style: record i of the table is
// position i across all columns (Section 4).
//
// The column set is guarded by a read-write mutex so ReplaceColumn can
// atomically swap in a re-hardened column while queries run: readers
// resolve the *Column pointer under RLock and then work on an immutable
// snapshot - in-flight queries that resolved before a swap keep running
// on the old encoding, which is never mutated by the swap.
type Table struct {
	name string

	mu      sync.RWMutex
	columns []*Column
	byName  map[string]*Column
}

// NewTable creates an empty table.
func NewTable(name string) *Table {
	return &Table{name: name, byName: make(map[string]*Column)}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// AddColumn attaches a column; all columns must have equal length.
func (t *Table) AddColumn(c *Column) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.byName[c.Name()]; dup {
		return fmt.Errorf("storage: duplicate column %q in table %q", c.Name(), t.name)
	}
	if len(t.columns) > 0 && c.Len() != t.columns[0].Len() {
		return fmt.Errorf("storage: column %q has %d rows, table %q has %d",
			c.Name(), c.Len(), t.name, t.columns[0].Len())
	}
	t.columns = append(t.columns, c)
	t.byName[c.Name()] = c
	return nil
}

// ReplaceColumn atomically swaps an existing column for a same-named,
// same-length replacement - the publication step of online
// re-hardening. The old column is left untouched, so queries that
// resolved it before the swap finish on the old encoding.
func (t *Table) ReplaceColumn(c *Column) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	old, ok := t.byName[c.Name()]
	if !ok {
		return fmt.Errorf("storage: no column %q in table %q to replace", c.Name(), t.name)
	}
	if c.Len() != old.Len() {
		return fmt.Errorf("storage: replacement column %q has %d rows, table %q has %d",
			c.Name(), c.Len(), t.name, old.Len())
	}
	for i, ec := range t.columns {
		if ec == old {
			t.columns[i] = c
			break
		}
	}
	t.byName[c.Name()] = c
	return nil
}

// Column returns the named column.
func (t *Table) Column(name string) (*Column, error) {
	t.mu.RLock()
	c, ok := t.byName[name]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("storage: no column %q in table %q", name, t.name)
	}
	return c, nil
}

// MustColumn is Column but panics on a missing name; query plans use it
// for statically known schemas.
func (t *Table) MustColumn(name string) *Column {
	c, err := t.Column(name)
	if err != nil {
		panic(err)
	}
	return c
}

// Columns returns a snapshot of all columns in attachment order (a copy,
// so a concurrent ReplaceColumn cannot race the caller's iteration).
func (t *Table) Columns() []*Column {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Column(nil), t.columns...)
}

// Rows returns the number of records.
func (t *Table) Rows() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if len(t.columns) == 0 {
		return 0
	}
	return t.columns[0].Len()
}

// Bytes returns the summed data-array footprint of all columns plus their
// dictionaries and string heaps (each counted once). Heaps and
// dictionaries never grow under hardening - only the fixed-width arrays
// widen - which is why the end-to-end storage overhead of AHEAD stays
// well below DMR's 2x (Figure 1b).
func (t *Table) Bytes() int {
	total := 0
	seenDict := make(map[*Dict]bool)
	seenHeap := make(map[*StringHeap]bool)
	for _, c := range t.Columns() {
		total += c.Bytes()
		if d := c.Dict(); d != nil && !seenDict[d] {
			seenDict[d] = true
			total += d.Bytes()
		}
		if h := c.Heap(); h != nil && !seenHeap[h] {
			seenHeap[h] = true
			total += h.Bytes()
		}
	}
	return total
}

// CodeChooser selects the AN code for a column during table hardening.
// The paper's end-to-end policy (Section 6.2) hardens with the largest
// known super A for the column's data width; the Figure 8 experiment
// instead selects the smallest A for a target minimum bit-flip weight.
type CodeChooser func(dataBits uint) (*an.Code, error)

// LargestCodeChooser picks the largest published super A whose code fits
// the next native register width, the Section 6 default. Data wider than
// the published tables (the 48-bit resbig / heap-reference domain) is
// hardened with the strongest 32-bit constant; like the paper's resbig,
// its exact minimum-bit-flip-weight guarantee at that width is not
// published ("tbc" in Table 3), but the code detects every non-multiple.
func LargestCodeChooser(dataBits uint) (*an.Code, error) {
	if dataBits > 48 {
		return nil, fmt.Errorf("storage: no hardening beyond 48-bit data, got %d", dataBits)
	}
	if dataBits > 32 {
		return an.New(32417, dataBits)
	}
	budget := dataBits * 2
	if budget > 64 {
		budget = 64
	}
	return an.LargestKnown(dataBits, budget)
}

// MinBFWCodeChooser picks the smallest super A guaranteeing the given
// minimum bit-flip weight (the Figure 8 sweep). Widths beyond the
// published tables reuse the 32-bit constant with the caveat described at
// LargestCodeChooser.
func MinBFWCodeChooser(minBFW int) CodeChooser {
	return func(dataBits uint) (*an.Code, error) {
		if dataBits > 32 && dataBits <= 48 {
			a, ok := an.SuperA(32, minBFW)
			if !ok {
				return nil, fmt.Errorf("storage: no published A for min bfw %d at wide data", minBFW)
			}
			return an.New(a, dataBits)
		}
		return an.ForMinBFW(dataBits, minBFW)
	}
}

// Harden returns a hardened copy of the table: every column encoded with
// the code the chooser assigns to its data width. Dictionaries are shared
// with the source table (they are immutable).
func (t *Table) Harden(choose CodeChooser) (*Table, error) {
	out := NewTable(t.name)
	for _, c := range t.Columns() {
		bits := c.Kind().DataBits()
		if c.Kind() == Str {
			bits = c.Dict().Bits()
			// Dictionary codes harden at their byte-compressed width so
			// the table keeps one code per width class.
			w, err := widthForBits(bits)
			if err != nil {
				return nil, err
			}
			bits = uint(w) * 8
		}
		if bits > 48 {
			bits = 48 // resbig and heap-reference limit (Section 6.1)
		}
		code, err := choose(bits)
		if err != nil {
			return nil, fmt.Errorf("storage: hardening %s.%s: %w", t.name, c.Name(), err)
		}
		hc, err := c.Harden(code)
		if err != nil {
			return nil, err
		}
		if err := out.AddColumn(hc); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Replicate returns a deep copy of the table's columns - the second
// replica DMR keeps in a distinct memory region.
func (t *Table) Replicate() (*Table, error) {
	out := NewTable(t.name)
	for _, c := range t.Columns() {
		cp := &Column{name: c.name, kind: c.kind, width: c.width, code: c.code, dict: c.dict, heap: c.heap}
		cp.u8 = append([]uint8(nil), c.u8...)
		cp.u16 = append([]uint16(nil), c.u16...)
		cp.u32 = append([]uint32(nil), c.u32...)
		cp.u64 = append([]uint64(nil), c.u64...)
		cp.resCode = c.resCode
		cp.resCheck = append([]uint16(nil), c.resCheck...)
		cp.initPacked()
		if err := out.AddColumn(cp); err != nil {
			return nil, err
		}
	}
	return out, nil
}
