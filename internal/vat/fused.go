package vat

import (
	"fmt"

	"ahead/internal/an"
	"ahead/internal/hashmap"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// RangePred is an inclusive plain-domain range predicate on one column,
// the input form of the fused pipeline (equality is lo == hi).
type RangePred struct {
	Col    *storage.Column
	Lo, Hi uint64
}

// FusedSumProduct collapses the Scan -> Filter* -> SemiJoin -> SumProduct
// pipeline of the Q1.x flights into one pass: no Operator batches, no
// position vectors, just a row loop keeping its state in registers. The
// per-value detection semantics are exactly those of the pipeline it
// replaces - colRange.test for the predicates, the SemiJoin soften/probe
// for the FK, and the SumProduct verify/accumulate (Eq. 7c) for the
// measures - so answers and logged error positions match the unfused
// pipeline, and fused serial matches fused parallel byte for byte
// (morsel logs merge in morsel order, like GroupSumParallel).
func FusedSumProduct(preds []RangePred, fk *storage.Column, ht *hashmap.U64, a, b *storage.Column, o *Opts) (uint64, *an.Code, error) {
	n := fk.Len()
	for _, p := range preds {
		if p.Col.Len() != n {
			return 0, nil, fmt.Errorf("vat: fused scan over unequal column lengths %d/%d", p.Col.Len(), n)
		}
	}
	if a.Len() != n || b.Len() != n {
		return 0, nil, fmt.Errorf("vat: fused sum-product over unequal column lengths")
	}
	codeA, codeB := a.Code(), b.Code()
	if (codeA == nil) != (codeB == nil) {
		return 0, nil, fmt.Errorf("vat: sum-product needs both inputs plain or both hardened")
	}
	var invB uint64
	if codeB != nil {
		invB = an.InverseMod2N(codeB.A(), 64)
	}

	var sum uint64
	if p := o.par(n); p != nil {
		ms := p.MorselSize()
		count := (n + ms - 1) / ms
		sums := make([]uint64, count)
		logs := make([]*ops.ErrorLog, count)
		errs := make([]error, count)
		p.ForEach(n, func(m, start, end int) {
			logs[m] = ops.NewErrorLog()
			mo := &Opts{Detect: o.detect(), Log: logs[m]}
			sums[m], errs[m] = fusedSumProductRange(preds, fk, ht, a, b, invB, mo, start, end)
		})
		log := o.log()
		for m := range sums {
			if log != nil {
				log.Merge(logs[m])
			}
			if errs[m] != nil {
				return 0, nil, errs[m]
			}
			// Raw code words add in the 64-bit ring (Eq. 5), so partial
			// sums merged in morsel order equal the serial sum exactly.
			sum += sums[m]
		}
	} else {
		var err error
		sum, err = fusedSumProductRange(preds, fk, ht, a, b, invB, o, 0, n)
		if err != nil {
			return 0, nil, err
		}
	}

	if codeA == nil {
		return sum, nil, nil
	}
	acc, err := an.New(codeA.A(), 48)
	if err != nil {
		return 0, nil, err
	}
	if o.detect() {
		if _, ok := acc.Check(sum); !ok && o.log() != nil {
			o.log().Record(ops.VecLogName("sum"), 0)
		}
	}
	return acc.Decode(sum), acc, nil
}

// fusedSumProductRange is the morsel kernel of FusedSumProduct over fact
// rows [start, end): predicates short-circuit left to right, the FK
// probes the build table, and surviving rows accumulate a*b raw.
func fusedSumProductRange(preds []RangePred, fk *storage.Column, ht *hashmap.U64, a, b *storage.Column, invB uint64, o *Opts, start, end int) (uint64, error) {
	rngs := make([]*colRange, len(preds))
	for i, p := range preds {
		r, err := newColRange(p.Col, p.Lo, p.Hi, o)
		if err != nil {
			return 0, err
		}
		rngs[i] = r
	}
	detect := o.detect()
	log := o.log()
	codeFK := fk.Code()
	codeA, codeB := a.Code(), b.Code()

	var sum uint64
rows:
	for i := start; i < end; i++ {
		p := uint32(i)
		for _, r := range rngs {
			if !r.test(p) {
				continue rows
			}
		}
		kv := fk.Get(i)
		if codeFK != nil {
			d, ok := codeFK.Check(kv)
			if !ok {
				if detect {
					if log != nil {
						log.Record(fk.Name(), uint64(i))
					}
					continue
				}
				// Late detection: the softened garbage key simply misses
				// the table below.
			}
			kv = d
		}
		if _, hit := ht.Get(kv); !hit {
			continue
		}
		av, bv := a.Get(i), b.Get(i)
		if codeA == nil {
			sum += av * bv
			continue
		}
		if detect {
			okA := codeA.IsValid(av)
			okB := codeB.IsValid(bv)
			if !okA || !okB {
				if log != nil {
					if !okA {
						log.Record(a.Name(), uint64(i))
					}
					if !okB {
						log.Record(b.Name(), uint64(i))
					}
				}
				continue
			}
		}
		sum += av * bv * invB
	}
	return sum, nil
}
