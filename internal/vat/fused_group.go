package vat

import (
	"fmt"

	"ahead/internal/ops"
	"ahead/internal/storage"
)

// FusedProbeGroupSum collapses the Scan -> Filter* -> GroupSum pipeline
// of the Q2.x-Q4.x flights into one pass, the vector-at-a-time twin of
// ops.FusedProbeGroupSum: no Operator batches, no position vectors, just
// a row loop that tests the predicates and feeds survivors straight into
// the grouped accumulator. Detection semantics are exactly those of the
// pipeline it replaces - colRange.test for the predicates and
// groupAcc.consumeOne for the probe cascade and measure - so group
// tuples, sums, and logged error positions match the unfused pipeline,
// and fused serial matches fused parallel byte for byte (morsel
// accumulators and logs merge in morsel order, like GroupSumParallel).
func FusedProbeGroupSum(preds []RangePred, dims []DimAttr, measure *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	return fusedProbeGroup(preds, dims, measure, nil, o)
}

// FusedProbeGroupSumDiff is FusedProbeGroupSum with the Q4.x profit
// aggregate: per surviving row it accumulates measure-measureB into the
// row's group. The measures may carry different As (adaptive hardening
// re-encodes them independently): measureB's words are rescaled into
// measure's code via an.DiffFactor before accumulating (Eq. 7c applied
// to subtraction).
func FusedProbeGroupSumDiff(preds []RangePred, dims []DimAttr, measure, measureB *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	if err := checkDiffMeasures(measure, measureB); err != nil {
		return nil, nil, err
	}
	return fusedProbeGroup(preds, dims, measure, measureB, o)
}

// fusedProbeGroup is the shared entry point: validate, then run the row
// loop serially or cut it into morsels on the worker pool.
func fusedProbeGroup(preds []RangePred, dims []DimAttr, measure, measureB *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	if na := countGroupAttrs(dims); na == 0 || na > 4 {
		return nil, nil, fmt.Errorf("vat: fused group-sum supports 1..4 group attributes, got %d", na)
	}
	n := measure.Len()
	for _, p := range preds {
		if p.Col.Len() != n {
			return nil, nil, fmt.Errorf("vat: fused scan over unequal column lengths %d/%d", p.Col.Len(), n)
		}
	}
	for _, d := range dims {
		if d.FK.Len() != n {
			return nil, nil, fmt.Errorf("vat: fused probe over unequal column lengths %d/%d", d.FK.Len(), n)
		}
	}
	if measureB != nil && measureB.Len() != n {
		return nil, nil, fmt.Errorf("vat: fused group-sum-diff over unequal column lengths %d/%d", n, measureB.Len())
	}

	if p := o.par(n); p != nil {
		ms := p.MorselSize()
		count := (n + ms - 1) / ms
		parts := make([]*groupAcc, count)
		logs := make([]*ops.ErrorLog, count)
		errs := make([]error, count)
		p.ForEach(n, func(m, start, end int) {
			logs[m] = ops.NewErrorLog()
			mo := &Opts{Detect: o.detect(), Log: logs[m]}
			parts[m], errs[m] = fusedProbeGroupRange(preds, dims, measure, measureB, mo, start, end)
		})
		log := o.log()
		total := newGroupAcc(dims, measure, measureB, o)
		for m, part := range parts {
			if log != nil {
				log.Merge(logs[m])
			}
			if errs[m] != nil {
				// Serial execution would have stopped here; drop the later
				// morsels' logs and report the first error in row order.
				return nil, nil, errs[m]
			}
			total.merge(part)
		}
		return total.finalize(log)
	}

	acc, err := fusedProbeGroupRange(preds, dims, measure, measureB, o, 0, n)
	if err != nil {
		return nil, nil, err
	}
	return acc.finalize(o.log())
}

// fusedProbeGroupRange is the morsel kernel over fact rows [start, end):
// predicates short-circuit left to right, survivors resolve through the
// dimension tables and accumulate into the morsel's private groups.
func fusedProbeGroupRange(preds []RangePred, dims []DimAttr, measure, measureB *storage.Column, o *Opts, start, end int) (*groupAcc, error) {
	rngs := make([]*colRange, len(preds))
	for i, p := range preds {
		r, err := newColRange(p.Col, p.Lo, p.Hi, o)
		if err != nil {
			return nil, err
		}
		rngs[i] = r
	}
	acc := newGroupAcc(dims, measure, measureB, o)
rows:
	for i := start; i < end; i++ {
		p := uint32(i)
		for _, r := range rngs {
			if !r.test(p) {
				continue rows
			}
		}
		if err := acc.consumeOne(p); err != nil {
			return nil, err
		}
	}
	return acc, nil
}
