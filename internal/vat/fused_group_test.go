package vat

import (
	"testing"

	"ahead/internal/exec"
	"ahead/internal/hashmap"
	"ahead/internal/ops"
	"ahead/internal/ssb"
	"ahead/internal/storage"
)

// q21FusedParts assembles the fused form of the Q2.1 flight: the scan
// predicate, the probe cascade (part and date carry group attributes,
// supplier is membership-only), and the revenue measure - the same
// stages as q21Pipeline, collapsed into FusedProbeGroupSum's inputs.
func q21FusedParts(t testing.TB, db *exec.DB, hardened bool) (preds []RangePred, dims []DimAttr, measure *storage.Column) {
	t.Helper()
	pick := func(name string) *storage.Table {
		if hardened {
			return db.Hardened(name)
		}
		return db.Plain(name)
	}
	lo, part, supp, date := pick("lineorder"), pick("part"), pick("supplier"), pick("date")
	opsOpts := &ops.Opts{}

	buildHT := func(tab *storage.Table, filterCol string, lov, hiv uint64, key string) *hashmap.U64 {
		sel, err := ops.Filter(tab.MustColumn(filterCol), lov, hiv, opsOpts)
		if err != nil {
			t.Fatal(err)
		}
		ht, err := ops.HashBuild(tab.MustColumn(key), sel, opsOpts)
		if err != nil {
			t.Fatal(err)
		}
		return ht
	}
	catDict := db.Plain("part").MustColumn("p_category").Dict()
	mfgr12, _ := catDict.Code("MFGR#12")
	regDict := db.Plain("supplier").MustColumn("s_region").Dict()
	america, _ := regDict.Code("AMERICA")

	partHT := buildHT(part, "p_category", uint64(mfgr12), uint64(mfgr12), "p_partkey")
	suppHT := buildHT(supp, "s_region", uint64(america), uint64(america), "s_suppkey")
	dateHT := buildHT(date, "d_datekey", 0, ^uint64(0), "d_datekey")

	preds = []RangePred{{Col: lo.MustColumn("lo_orderkey"), Lo: 0, Hi: ^uint64(0)}}
	dims = []DimAttr{
		{FK: lo.MustColumn("lo_partkey"), HT: partHT, Attr: part.MustColumn("p_brand1")},
		{FK: lo.MustColumn("lo_suppkey"), HT: suppHT}, // membership-only
		{FK: lo.MustColumn("lo_orderdate"), HT: dateHT, Attr: date.MustColumn("d_year")},
	}
	return preds, dims, lo.MustColumn("lo_revenue")
}

func q21Fused(t testing.TB, db *exec.DB, hardened bool, o *Opts) *ops.Result {
	t.Helper()
	preds, dims, measure := q21FusedParts(t, db, hardened)
	groups, sums, err := FusedProbeGroupSum(preds, dims, measure, o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GroupSumResult(groups, sums)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// samePositions compares two logs per column: the fused row loop
// interleaves detections across columns differently than the
// stage-at-a-time pipeline, but the distinct position set per column
// must be identical.
func samePositions(t *testing.T, got, want *ops.ErrorLog) {
	t.Helper()
	cols := map[string]bool{}
	for _, c := range got.Columns() {
		cols[c] = true
	}
	for _, c := range want.Columns() {
		cols[c] = true
	}
	for c := range cols {
		gp, err := got.Positions(c)
		if err != nil {
			t.Fatal(err)
		}
		wp, err := want.Positions(c)
		if err != nil {
			t.Fatal(err)
		}
		if len(gp) != len(wp) {
			t.Fatalf("column %q: fused logged %d positions, pipeline %d", c, len(gp), len(wp))
		}
		for i := range gp {
			if gp[i] != wp[i] {
				t.Fatalf("column %q position %d: fused %d vs pipeline %d", c, i, gp[i], wp[i])
			}
		}
	}
}

// TestFusedProbeGroupSumMatchesPipeline: the one-pass probe cascade
// answers Q2.1 exactly like the Scan -> SemiJoin* -> GroupSum pipeline -
// clean and with faults injected into a predicate column, both kinds of
// FK (group-bearing and membership-only), and the measure - and logs
// the same per-column detection sets.
func TestFusedProbeGroupSumMatchesPipeline(t *testing.T) {
	data, err := ssb.Generate(0.005, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	ref := q21Pipeline(t, db, false, &Opts{})
	if ref.Rows() == 0 {
		t.Fatal("degenerate workload")
	}
	if got := q21Fused(t, db, false, &Opts{}); !got.Equal(ref) {
		t.Fatal("unprotected fused Q2.1 differs from pipeline")
	}
	if got := q21Fused(t, db, true, &Opts{}); !got.Equal(ref) {
		t.Fatal("late fused Q2.1 differs")
	}
	log := ops.NewErrorLog()
	if got := q21Fused(t, db, true, &Opts{Detect: true, Log: log}); !got.Equal(ref) {
		t.Fatal("continuous fused Q2.1 differs")
	}
	if log.Count() != 0 {
		t.Fatalf("clean data logged %d", log.Count())
	}

	// Faults across every stage the fused pass covers.
	lo := db.Hardened("lineorder")
	for i, col := range []string{"lo_orderkey", "lo_partkey", "lo_suppkey", "lo_revenue"} {
		c := lo.MustColumn(col)
		for p := 17 * (i + 1); p < c.Len(); p += 97 {
			c.Corrupt(p, 1<<10)
		}
	}
	pipeLog := ops.NewErrorLog()
	want := q21Pipeline(t, db, true, &Opts{Detect: true, Log: pipeLog})
	fusedLog := ops.NewErrorLog()
	got := q21Fused(t, db, true, &Opts{Detect: true, Log: fusedLog})
	if !got.Equal(want) {
		t.Fatal("fused and pipeline disagree under injected faults")
	}
	if pipeLog.Count() == 0 {
		t.Fatal("pipeline detected nothing; corruption setup is broken")
	}
	for _, col := range []string{"lo_orderkey", "lo_partkey", "lo_suppkey", "lo_revenue"} {
		if pos, err := pipeLog.Positions(col); err != nil || len(pos) == 0 {
			t.Fatalf("no pipeline detections on %s: %v, %v", col, pos, err)
		}
	}
	samePositions(t, fusedLog, pipeLog)

	// Late detection still agrees row for row (corrupt rows drop in both).
	lateWant := q21Pipeline(t, db, true, &Opts{})
	if lateGot := q21Fused(t, db, true, &Opts{}); !lateGot.Equal(lateWant) {
		t.Fatal("late fused and pipeline disagree under injected faults")
	}
}

// TestFusedProbeGroupSumParallelMatchesSerial: morsel accumulators and
// logs merged in morsel order reproduce the serial pass byte for byte.
func TestFusedProbeGroupSumParallelMatchesSerial(t *testing.T) {
	data, err := ssb.Generate(0.01, 21)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	rev := db.Hardened("lineorder").MustColumn("lo_revenue")
	for i := 100; i < rev.Len(); i += 50 {
		rev.Corrupt(i, 1<<9)
	}
	preds, dims, measure := q21FusedParts(t, db, true)

	serialLog := ops.NewErrorLog()
	sGroups, sSums, err := FusedProbeGroupSum(preds, dims, measure, &Opts{Detect: true, Log: serialLog})
	if err != nil {
		t.Fatal(err)
	}

	pool := exec.NewPoolMorsel(4, 4096)
	defer pool.Close()
	parLog := ops.NewErrorLog()
	pGroups, pSums, err := FusedProbeGroupSum(preds, dims, measure,
		&Opts{Detect: true, Log: parLog, Par: pool})
	if err != nil {
		t.Fatal(err)
	}

	if len(pGroups) != len(sGroups) {
		t.Fatalf("parallel built %d groups, serial %d", len(pGroups), len(sGroups))
	}
	for g := range sGroups {
		for c := range sGroups[g] {
			if pGroups[g][c] != sGroups[g][c] {
				t.Fatalf("group %d component %d: parallel %d vs serial %d",
					g, c, pGroups[g][c], sGroups[g][c])
			}
		}
		if pSums[g] != sSums[g] {
			t.Fatalf("group %d sum: parallel %d vs serial %d", g, pSums[g], sSums[g])
		}
	}
	if serialLog.Count() == 0 {
		t.Fatal("serial run detected nothing; corruption setup is broken")
	}
	if !serialLog.Equal(parLog) {
		t.Fatalf("parallel log (%d entries) differs from serial (%d entries)",
			parLog.Count(), serialLog.Count())
	}
}

// TestFusedProbeGroupSumDiff: the fused profit aggregate matches the
// pipeline's GroupSumDiff.
func TestFusedProbeGroupSumDiff(t *testing.T) {
	data, err := ssb.Generate(0.005, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	want := q21ProfitPipeline(t, db, false, &Opts{})
	if want.Rows() == 0 {
		t.Fatal("degenerate workload")
	}
	preds, dims, _ := q21FusedParts(t, db, true)
	lo := db.Hardened("lineorder")
	log := ops.NewErrorLog()
	groups, sums, err := FusedProbeGroupSumDiff(preds, dims,
		lo.MustColumn("lo_revenue"), lo.MustColumn("lo_supplycost"),
		&Opts{Detect: true, Log: log})
	if err != nil {
		t.Fatal(err)
	}
	got, err := GroupSumResult(groups, sums)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("fused profit aggregate differs from pipeline")
	}
	if log.Count() != 0 {
		t.Fatalf("clean data logged %d", log.Count())
	}
}

func TestFusedProbeGroupSumValidation(t *testing.T) {
	col, _ := storage.NewColumn("v", storage.TinyInt)
	col.Append(1)
	ht := hashmap.New(8)
	ht.Put(1, 0)
	// No attribute-bearing dim: nothing to group by.
	if _, _, err := FusedProbeGroupSum(nil, []DimAttr{{FK: col, HT: ht}}, col, nil); err == nil {
		t.Error("membership-only dims must error")
	}
	short, _ := storage.NewColumn("s", storage.TinyInt)
	dims := []DimAttr{{FK: col, HT: ht, Attr: col}}
	if _, _, err := FusedProbeGroupSum([]RangePred{{Col: short, Lo: 0, Hi: 255}}, dims, col, nil); err == nil {
		t.Error("unequal predicate length must error")
	}
	if _, _, err := FusedProbeGroupSumDiff(nil, dims, col, nil, nil); err == nil {
		t.Error("nil second measure must error")
	}
}

// The bench pair of the fused probe cascade: the batched
// Scan -> SemiJoin* -> GroupSum pipeline vs the one-pass row loop over
// the same hardened Q2.1 flight, continuous detection on both.
func benchQ21(b *testing.B, fused bool) {
	data, err := ssb.Generate(0.02, 7)
	if err != nil {
		b.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		b.Fatal(err)
	}
	preds, dims, measure := q21FusedParts(b, db, true)
	lo := db.Hardened("lineorder")
	o := &Opts{Detect: true, Log: ops.NewErrorLog()}
	b.SetBytes(int64(measure.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if fused {
			if _, _, err := FusedProbeGroupSum(preds, dims, measure, o); err != nil {
				b.Fatal(err)
			}
			continue
		}
		scan, err := NewScan(lo.MustColumn("lo_orderkey"), 0, ^uint64(0), o)
		if err != nil {
			b.Fatal(err)
		}
		var in Operator = scan
		for _, d := range dims {
			in = NewSemiJoin(in, d.FK, d.HT, o)
		}
		if _, _, err := GroupSum(in, dims, measure, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVATQ21GroupSumPipeline(b *testing.B) { benchQ21(b, false) }
func BenchmarkVATQ21GroupSumFused(b *testing.B)    { benchQ21(b, true) }
