package vat

import (
	"fmt"

	"ahead/internal/an"
	"ahead/internal/hashmap"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// DimAttr names one group attribute reached through a dimension join: for
// every surviving fact row, FK is probed against HT (decoded key ->
// build position, an ops.HashBuild table) and Attr is fetched at the
// matched position.
type DimAttr struct {
	FK   *storage.Column
	HT   *hashmap.U64
	Attr *storage.Column
}

// groupAcc accumulates grouped sums from position batches: the shared
// kernel of GroupSum (one accumulator draining the whole pipeline) and
// GroupSumParallel (one accumulator per morsel, merged afterwards).
// Groups get dense ids in first-occurrence order; packed keeps the packed
// key per group so accumulators merge without re-resolving tuples.
type groupAcc struct {
	dims     []DimAttr
	measure  *storage.Column
	measureB *storage.Column // nil: plain sum; else sum of measure-measureB
	mCode    *an.Code
	mbCode   *an.Code
	detect   bool
	log      *ops.ErrorLog
	ht       *hashmap.U64
	groups   [][]uint64
	packed   []uint64
	rawSums  []uint64
}

func newGroupAcc(dims []DimAttr, measure, measureB *storage.Column, o *Opts) *groupAcc {
	a := &groupAcc{
		dims:     dims,
		measure:  measure,
		measureB: measureB,
		mCode:    measure.Code(),
		detect:   o.detect(),
		log:      o.log(),
		ht:       hashmap.New(1024),
	}
	if measureB != nil {
		a.mbCode = measureB.Code()
	}
	return a
}

// sumName is the aggregate's vec: log label, matching the
// column-at-a-time engine's output naming.
func (a *groupAcc) sumName() string {
	if a.measureB != nil {
		return "sum(" + a.measure.Name() + "-" + a.measureB.Name() + ")"
	}
	return "sum(" + a.measure.Name() + ")"
}

// consume folds one batch of surviving positions into the accumulator.
func (a *groupAcc) consume(pos []uint32) error {
rows:
	for _, p := range pos {
		var packed uint64
		tuple := make([]uint64, len(a.dims))
		for c, dim := range a.dims {
			fkv := dim.FK.Get(int(p))
			if code := dim.FK.Code(); code != nil {
				d, ok := code.Check(fkv)
				if !ok {
					if a.detect && a.log != nil {
						a.log.Record(dim.FK.Name(), uint64(p))
					}
					continue rows
				}
				fkv = d
			}
			bp, hit := dim.HT.Get(fkv)
			if !hit {
				// The pipeline's semijoins guarantee membership; a miss
				// here means the FK flipped after the join under late
				// detection - drop the row silently, exactly the
				// documented caveat.
				continue rows
			}
			av := dim.Attr.Get(int(bp))
			if code := dim.Attr.Code(); code != nil {
				d, ok := code.Check(av)
				if !ok {
					if a.detect && a.log != nil {
						a.log.Record(dim.Attr.Name(), uint64(bp))
					}
					continue rows
				}
				av = d
			}
			if av >= 1<<16 {
				return fmt.Errorf("vat: group component %q value %d exceeds 16 bits", dim.Attr.Name(), av)
			}
			tuple[c] = av
			packed |= av << (16 * uint(c))
		}
		mv := a.measure.Get(int(p))
		var mbv uint64
		if a.measureB != nil {
			mbv = a.measureB.Get(int(p))
		}
		if a.mCode != nil && a.detect {
			_, okA := a.mCode.Check(mv)
			okB := true
			if a.measureB != nil {
				_, okB = a.mbCode.Check(mbv)
			}
			if !okA || !okB {
				if a.log != nil {
					if !okA {
						a.log.Record(a.measure.Name(), uint64(p))
					}
					if !okB {
						a.log.Record(a.measureB.Name(), uint64(p))
					}
				}
				continue rows
			}
		}
		gid, inserted := a.ht.GetOrInsert(packed, uint32(len(a.groups)))
		if inserted {
			a.groups = append(a.groups, tuple)
			a.packed = append(a.packed, packed)
			a.rawSums = append(a.rawSums, 0)
		}
		a.rawSums[gid] += mv - mbv // hardened: (Σd)·A under the widened code
	}
	return nil
}

// merge folds another accumulator's groups into this one, preserving
// this accumulator's first-occurrence group order and appending the
// other's unseen groups in their order. Called in morsel order it
// reproduces the serial group numbering exactly. Hardened raw sums add
// in the ring (Eq. 5), so the combined sum equals the serial one.
func (a *groupAcc) merge(other *groupAcc) {
	for g, pk := range other.packed {
		gid, inserted := a.ht.GetOrInsert(pk, uint32(len(a.groups)))
		if inserted {
			a.groups = append(a.groups, other.groups[g])
			a.packed = append(a.packed, pk)
			a.rawSums = append(a.rawSums, 0)
		}
		a.rawSums[gid] += other.rawSums[g]
	}
}

// finalize verifies (hardened case) and decodes the accumulated sums,
// logging corrupt accumulators into log. It runs once, after any merging,
// so the parallel path checks the same final values as the serial one.
func (a *groupAcc) finalize(log *ops.ErrorLog) (groups [][]uint64, sums []uint64, err error) {
	var acc *an.Code
	if a.mCode != nil {
		acc, err = an.New(a.mCode.A(), 48)
		if err != nil {
			return nil, nil, err
		}
	}
	sums = make([]uint64, len(a.rawSums))
	for g, s := range a.rawSums {
		if acc == nil {
			sums[g] = s
			continue
		}
		d, ok := acc.Check(s)
		if !ok {
			if a.detect && log != nil {
				log.Record(ops.VecLogName(a.sumName()), uint64(g))
			}
			continue
		}
		sums[g] = d
	}
	return a.groups, sums, nil
}

// GroupSum is the vectorized grouped-aggregation sink: it drains the
// pipeline batch by batch, resolves the group attributes through the
// dimension tables, and accumulates the hardened (or plain) measure per
// group - the vector-at-a-time form of the ops.GroupBy + ops.SumGrouped
// tail. Group keys pack 16 bits per component like the column-at-a-time
// engine. It returns the decoded group tuples and sums.
func GroupSum(in Operator, dims []DimAttr, measure *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	return groupSum(in, dims, measure, nil, o)
}

// GroupSumDiff is GroupSum with the Q4.x profit aggregate: per surviving
// row it accumulates measure-measureB into the row's group. Both
// measures must share one code, so the raw difference is the code word
// of the difference (Eq. 5).
func GroupSumDiff(in Operator, dims []DimAttr, measure, measureB *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	if err := checkDiffMeasures(measure, measureB); err != nil {
		return nil, nil, err
	}
	return groupSum(in, dims, measure, measureB, o)
}

// checkDiffMeasures validates the code pairing of a difference aggregate.
func checkDiffMeasures(a, b *storage.Column) error {
	if b == nil {
		return fmt.Errorf("vat: group-sum-diff needs a second measure")
	}
	if (a.Code() == nil) != (b.Code() == nil) {
		return fmt.Errorf("vat: group-sum-diff needs both measures plain or both hardened")
	}
	if a.Code() != nil && a.Code().A() != b.Code().A() {
		return fmt.Errorf("vat: group-sum-diff across different As (%d vs %d)", a.Code().A(), b.Code().A())
	}
	return nil
}

// groupSum is the shared serial core of GroupSum and GroupSumDiff.
func groupSum(in Operator, dims []DimAttr, measure, measureB *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	if len(dims) == 0 || len(dims) > 4 {
		return nil, nil, fmt.Errorf("vat: group-sum supports 1..4 group attributes, got %d", len(dims))
	}
	acc := newGroupAcc(dims, measure, measureB, o)
	pos := make([]uint32, VectorSize)
	for {
		n, done, err := in.Next(pos)
		if err != nil {
			return nil, nil, err
		}
		if err := acc.consume(pos[:n]); err != nil {
			return nil, nil, err
		}
		if done {
			break
		}
	}
	return acc.finalize(o.log())
}

// SourceFunc builds one pipeline instance covering fact rows
// [start, end) - typically NewScanRange plus the filter/join stack -
// using the supplied Opts (which carry the morsel's private error log
// under GroupSumParallel).
type SourceFunc func(start, end int, o *Opts) (Operator, error)

// GroupSumParallel is the morsel-driven form of GroupSum: the fact rows
// are cut into morsels, each morsel runs its own pipeline instance (built
// by src) into a private accumulator with a private error log, and the
// partial states merge in morsel order. Because every pipeline emits
// global positions and merging preserves first-occurrence group order and
// log entry order, the groups, sums, and detected-error positions are
// identical to a serial GroupSum over the full extent. Without a pool (or
// when the input is a single morsel) it degrades to exactly that.
func GroupSumParallel(src SourceFunc, totalRows int, dims []DimAttr, measure *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	return groupSumParallel(src, totalRows, dims, measure, nil, o)
}

// GroupSumDiffParallel is the morsel-driven form of GroupSumDiff.
func GroupSumDiffParallel(src SourceFunc, totalRows int, dims []DimAttr, measure, measureB *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	if err := checkDiffMeasures(measure, measureB); err != nil {
		return nil, nil, err
	}
	return groupSumParallel(src, totalRows, dims, measure, measureB, o)
}

// groupSumParallel is the shared morsel-driven core.
func groupSumParallel(src SourceFunc, totalRows int, dims []DimAttr, measure, measureB *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	if len(dims) == 0 || len(dims) > 4 {
		return nil, nil, fmt.Errorf("vat: group-sum supports 1..4 group attributes, got %d", len(dims))
	}
	p := o.par(totalRows)
	if p == nil {
		in, err := src(0, totalRows, o)
		if err != nil {
			return nil, nil, err
		}
		return groupSum(in, dims, measure, measureB, o)
	}

	ms := p.MorselSize()
	count := (totalRows + ms - 1) / ms
	parts := make([]*groupAcc, count)
	logs := make([]*ops.ErrorLog, count)
	errs := make([]error, count)
	p.ForEach(totalRows, func(m, start, end int) {
		logs[m] = ops.NewErrorLog()
		mo := &Opts{Detect: o.detect(), Log: logs[m]}
		in, err := src(start, end, mo)
		if err != nil {
			errs[m] = err
			return
		}
		acc := newGroupAcc(dims, measure, measureB, mo)
		pos := make([]uint32, VectorSize)
		for {
			n, done, err := in.Next(pos)
			if err != nil {
				errs[m] = err
				return
			}
			if err := acc.consume(pos[:n]); err != nil {
				errs[m] = err
				return
			}
			if done {
				break
			}
		}
		parts[m] = acc
	})

	log := o.log()
	total := newGroupAcc(dims, measure, measureB, o)
	for m, part := range parts {
		if log != nil {
			log.Merge(logs[m])
		}
		if errs[m] != nil {
			// Serial execution would have stopped here; drop the later
			// morsels' logs and report the first error in row order.
			return nil, nil, errs[m]
		}
		total.merge(part)
	}
	return total.finalize(log)
}

// GroupSumResult canonicalizes GroupSum output into the shared Result
// form so the two engines' answers compare directly.
func GroupSumResult(groups [][]uint64, sums []uint64) (*ops.Result, error) {
	if len(groups) != len(sums) {
		return nil, fmt.Errorf("vat: %d groups vs %d sums", len(groups), len(sums))
	}
	r := &ops.Result{Keys: groups, Aggs: sums}
	r.Sort()
	return r, nil
}
