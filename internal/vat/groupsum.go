package vat

import (
	"fmt"

	"ahead/internal/an"
	"ahead/internal/hashmap"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// DimAttr names one group attribute reached through a dimension join: for
// every surviving fact row, FK is probed against HT (decoded key ->
// build position, an ops.HashBuild table) and Attr is fetched at the
// matched position. A nil Attr makes the join membership-only - the row
// must still hit the build table, but contributes no group component -
// mirroring ops.FusedJoin's attribute-less probes.
type DimAttr struct {
	FK   *storage.Column
	HT   *hashmap.U64
	Attr *storage.Column
}

// countGroupAttrs returns the number of attribute-bearing dimension
// joins - the width of the group tuple.
func countGroupAttrs(dims []DimAttr) int {
	n := 0
	for _, d := range dims {
		if d.Attr != nil {
			n++
		}
	}
	return n
}

// groupAcc accumulates grouped sums from position batches: the shared
// kernel of GroupSum (one accumulator draining the whole pipeline) and
// GroupSumParallel (one accumulator per morsel, merged afterwards).
// Groups get dense ids in first-occurrence order; packed keeps the packed
// key per group so accumulators merge without re-resolving tuples.
type groupAcc struct {
	dims     []DimAttr
	measure  *storage.Column
	measureB *storage.Column // nil: plain sum; else sum of measure-measureB
	mCode    *an.Code
	mbCode   *an.Code
	mbFactor uint64 // an.DiffFactor(mCode, mbCode): rescales b words into a's code
	detect   bool
	log      *ops.ErrorLog
	ht       *hashmap.U64
	groups   [][]uint64
	packed   []uint64
	rawSums  []uint64
}

func newGroupAcc(dims []DimAttr, measure, measureB *storage.Column, o *Opts) *groupAcc {
	a := &groupAcc{
		dims:     dims,
		measure:  measure,
		measureB: measureB,
		mCode:    measure.Code(),
		mbFactor: 1,
		detect:   o.detect(),
		log:      o.log(),
		ht:       hashmap.New(1024),
	}
	if measureB != nil {
		a.mbCode = measureB.Code()
		a.mbFactor = an.DiffFactor(a.mCode, a.mbCode)
	}
	return a
}

// sumName is the aggregate's vec: log label, matching the
// column-at-a-time engine's output naming.
func (a *groupAcc) sumName() string {
	if a.measureB != nil {
		return "sum(" + a.measure.Name() + "-" + a.measureB.Name() + ")"
	}
	return "sum(" + a.measure.Name() + ")"
}

// consume folds one batch of surviving positions into the accumulator.
func (a *groupAcc) consume(pos []uint32) error {
	for _, p := range pos {
		if err := a.consumeOne(p); err != nil {
			return err
		}
	}
	return nil
}

// consumeOne resolves one surviving fact row through the dimension
// tables and folds its measure into the row's group. Rows whose FK,
// attribute, or measure fails its code check (or whose FK misses the
// build table) are dropped, mirroring the pipeline operators this
// replaces. Shared by the batch sink (consume) and the fused row loop
// (FusedProbeGroupSum).
func (a *groupAcc) consumeOne(p uint32) error {
	var packed uint64
	tuple := make([]uint64, 0, len(a.dims))
	for _, dim := range a.dims {
		fkv := dim.FK.Get(int(p))
		if code := dim.FK.Code(); code != nil {
			d, ok := code.Check(fkv)
			if !ok {
				if a.detect && a.log != nil {
					a.log.Record(dim.FK.Name(), uint64(p))
				}
				return nil
			}
			fkv = d
		}
		bp, hit := dim.HT.Get(fkv)
		if !hit {
			// The pipeline's semijoins guarantee membership; a miss
			// here means the FK flipped after the join under late
			// detection - drop the row silently, exactly the
			// documented caveat.
			return nil
		}
		if dim.Attr == nil {
			continue // membership-only join, no group component
		}
		av := dim.Attr.Get(int(bp))
		if code := dim.Attr.Code(); code != nil {
			d, ok := code.Check(av)
			if !ok {
				if a.detect && a.log != nil {
					a.log.Record(dim.Attr.Name(), uint64(bp))
				}
				return nil
			}
			av = d
		}
		if av >= 1<<16 {
			return fmt.Errorf("vat: group component %q value %d exceeds 16 bits", dim.Attr.Name(), av)
		}
		packed |= av << (16 * uint(len(tuple)))
		tuple = append(tuple, av)
	}
	mv := a.measure.Get(int(p))
	var mbv uint64
	if a.measureB != nil {
		mbv = a.measureB.Get(int(p))
	}
	if a.mCode != nil && a.detect {
		_, okA := a.mCode.Check(mv)
		okB := true
		if a.measureB != nil {
			_, okB = a.mbCode.Check(mbv)
		}
		if !okA || !okB {
			if a.log != nil {
				if !okA {
					a.log.Record(a.measure.Name(), uint64(p))
				}
				if !okB {
					a.log.Record(a.measureB.Name(), uint64(p))
				}
			}
			return nil
		}
	}
	gid, inserted := a.ht.GetOrInsert(packed, uint32(len(a.groups)))
	if inserted {
		a.groups = append(a.groups, tuple)
		a.packed = append(a.packed, packed)
		a.rawSums = append(a.rawSums, 0)
	}
	// Hardened: (Σd)·A under the widened code; mbFactor rescales b's
	// words into a's code when their As differ (1 when they agree).
	a.rawSums[gid] += mv - mbv*a.mbFactor
	return nil
}

// merge folds another accumulator's groups into this one, preserving
// this accumulator's first-occurrence group order and appending the
// other's unseen groups in their order. Called in morsel order it
// reproduces the serial group numbering exactly. Hardened raw sums add
// in the ring (Eq. 5), so the combined sum equals the serial one.
func (a *groupAcc) merge(other *groupAcc) {
	for g, pk := range other.packed {
		gid, inserted := a.ht.GetOrInsert(pk, uint32(len(a.groups)))
		if inserted {
			a.groups = append(a.groups, other.groups[g])
			a.packed = append(a.packed, pk)
			a.rawSums = append(a.rawSums, 0)
		}
		a.rawSums[gid] += other.rawSums[g]
	}
}

// finalize verifies (hardened case) and decodes the accumulated sums,
// logging corrupt accumulators into log. It runs once, after any merging,
// so the parallel path checks the same final values as the serial one.
func (a *groupAcc) finalize(log *ops.ErrorLog) (groups [][]uint64, sums []uint64, err error) {
	var acc *an.Code
	if a.mCode != nil {
		acc, err = an.New(a.mCode.A(), 48)
		if err != nil {
			return nil, nil, err
		}
	}
	sums = make([]uint64, len(a.rawSums))
	for g, s := range a.rawSums {
		if acc == nil {
			sums[g] = s
			continue
		}
		d, ok := acc.Check(s)
		if !ok {
			if a.detect && log != nil {
				log.Record(ops.VecLogName(a.sumName()), uint64(g))
			}
			continue
		}
		sums[g] = d
	}
	return a.groups, sums, nil
}

// GroupSum is the vectorized grouped-aggregation sink: it drains the
// pipeline batch by batch, resolves the group attributes through the
// dimension tables, and accumulates the hardened (or plain) measure per
// group - the vector-at-a-time form of the ops.GroupBy + ops.SumGrouped
// tail. Group keys pack 16 bits per component like the column-at-a-time
// engine. It returns the decoded group tuples and sums.
func GroupSum(in Operator, dims []DimAttr, measure *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	return groupSum(in, dims, measure, nil, o)
}

// GroupSumDiff is GroupSum with the Q4.x profit aggregate: per surviving
// row it accumulates measure-measureB into the row's group. The measures
// may carry different As (adaptive hardening re-encodes them
// independently): measureB's words are rescaled into measure's code via
// an.DiffFactor before accumulating, so the per-group sums stay code
// words under measure's widened code.
func GroupSumDiff(in Operator, dims []DimAttr, measure, measureB *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	if err := checkDiffMeasures(measure, measureB); err != nil {
		return nil, nil, err
	}
	return groupSum(in, dims, measure, measureB, o)
}

// checkDiffMeasures validates the code pairing of a difference aggregate.
func checkDiffMeasures(a, b *storage.Column) error {
	if b == nil {
		return fmt.Errorf("vat: group-sum-diff needs a second measure")
	}
	if (a.Code() == nil) != (b.Code() == nil) {
		return fmt.Errorf("vat: group-sum-diff needs both measures plain or both hardened")
	}
	return nil
}

// groupSum is the shared serial core of GroupSum and GroupSumDiff.
func groupSum(in Operator, dims []DimAttr, measure, measureB *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	if na := countGroupAttrs(dims); na == 0 || na > 4 {
		return nil, nil, fmt.Errorf("vat: group-sum supports 1..4 group attributes, got %d", na)
	}
	acc := newGroupAcc(dims, measure, measureB, o)
	pos := make([]uint32, VectorSize)
	for {
		n, done, err := in.Next(pos)
		if err != nil {
			return nil, nil, err
		}
		if err := acc.consume(pos[:n]); err != nil {
			return nil, nil, err
		}
		if done {
			break
		}
	}
	return acc.finalize(o.log())
}

// SourceFunc builds one pipeline instance covering fact rows
// [start, end) - typically NewScanRange plus the filter/join stack -
// using the supplied Opts (which carry the morsel's private error log
// under GroupSumParallel).
type SourceFunc func(start, end int, o *Opts) (Operator, error)

// GroupSumParallel is the morsel-driven form of GroupSum: the fact rows
// are cut into morsels, each morsel runs its own pipeline instance (built
// by src) into a private accumulator with a private error log, and the
// partial states merge in morsel order. Because every pipeline emits
// global positions and merging preserves first-occurrence group order and
// log entry order, the groups, sums, and detected-error positions are
// identical to a serial GroupSum over the full extent. Without a pool (or
// when the input is a single morsel) it degrades to exactly that.
func GroupSumParallel(src SourceFunc, totalRows int, dims []DimAttr, measure *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	return groupSumParallel(src, totalRows, dims, measure, nil, o)
}

// GroupSumDiffParallel is the morsel-driven form of GroupSumDiff.
func GroupSumDiffParallel(src SourceFunc, totalRows int, dims []DimAttr, measure, measureB *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	if err := checkDiffMeasures(measure, measureB); err != nil {
		return nil, nil, err
	}
	return groupSumParallel(src, totalRows, dims, measure, measureB, o)
}

// groupSumParallel is the shared morsel-driven core.
func groupSumParallel(src SourceFunc, totalRows int, dims []DimAttr, measure, measureB *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	if na := countGroupAttrs(dims); na == 0 || na > 4 {
		return nil, nil, fmt.Errorf("vat: group-sum supports 1..4 group attributes, got %d", na)
	}
	p := o.par(totalRows)
	if p == nil {
		in, err := src(0, totalRows, o)
		if err != nil {
			return nil, nil, err
		}
		return groupSum(in, dims, measure, measureB, o)
	}

	ms := p.MorselSize()
	count := (totalRows + ms - 1) / ms
	parts := make([]*groupAcc, count)
	logs := make([]*ops.ErrorLog, count)
	errs := make([]error, count)
	p.ForEach(totalRows, func(m, start, end int) {
		logs[m] = ops.NewErrorLog()
		mo := &Opts{Detect: o.detect(), Log: logs[m]}
		in, err := src(start, end, mo)
		if err != nil {
			errs[m] = err
			return
		}
		acc := newGroupAcc(dims, measure, measureB, mo)
		pos := make([]uint32, VectorSize)
		for {
			n, done, err := in.Next(pos)
			if err != nil {
				errs[m] = err
				return
			}
			if err := acc.consume(pos[:n]); err != nil {
				errs[m] = err
				return
			}
			if done {
				break
			}
		}
		parts[m] = acc
	})

	log := o.log()
	total := newGroupAcc(dims, measure, measureB, o)
	for m, part := range parts {
		if log != nil {
			log.Merge(logs[m])
		}
		if errs[m] != nil {
			// Serial execution would have stopped here; drop the later
			// morsels' logs and report the first error in row order.
			return nil, nil, errs[m]
		}
		total.merge(part)
	}
	return total.finalize(log)
}

// GroupSumResult canonicalizes GroupSum output into the shared Result
// form so the two engines' answers compare directly.
func GroupSumResult(groups [][]uint64, sums []uint64) (*ops.Result, error) {
	if len(groups) != len(sums) {
		return nil, fmt.Errorf("vat: %d groups vs %d sums", len(groups), len(sums))
	}
	r := &ops.Result{Keys: groups, Aggs: sums}
	r.Sort()
	return r, nil
}
