package vat

import (
	"fmt"

	"ahead/internal/an"
	"ahead/internal/hashmap"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// DimAttr names one group attribute reached through a dimension join: for
// every surviving fact row, FK is probed against HT (decoded key ->
// build position, an ops.HashBuild table) and Attr is fetched at the
// matched position.
type DimAttr struct {
	FK   *storage.Column
	HT   *hashmap.U64
	Attr *storage.Column
}

// groupAcc accumulates grouped sums from position batches: the shared
// kernel of GroupSum (one accumulator draining the whole pipeline) and
// GroupSumParallel (one accumulator per morsel, merged afterwards).
// Groups get dense ids in first-occurrence order; packed keeps the packed
// key per group so accumulators merge without re-resolving tuples.
type groupAcc struct {
	dims    []DimAttr
	measure *storage.Column
	mCode   *an.Code
	detect  bool
	log     *ops.ErrorLog
	ht      *hashmap.U64
	groups  [][]uint64
	packed  []uint64
	rawSums []uint64
}

func newGroupAcc(dims []DimAttr, measure *storage.Column, o *Opts) *groupAcc {
	return &groupAcc{
		dims:    dims,
		measure: measure,
		mCode:   measure.Code(),
		detect:  o.detect(),
		log:     o.log(),
		ht:      hashmap.New(1024),
	}
}

// consume folds one batch of surviving positions into the accumulator.
func (a *groupAcc) consume(pos []uint32) error {
rows:
	for _, p := range pos {
		var packed uint64
		tuple := make([]uint64, len(a.dims))
		for c, dim := range a.dims {
			fkv := dim.FK.Get(int(p))
			if code := dim.FK.Code(); code != nil {
				d, ok := code.Check(fkv)
				if !ok {
					if a.detect && a.log != nil {
						a.log.Record(dim.FK.Name(), uint64(p))
					}
					continue rows
				}
				fkv = d
			}
			bp, hit := dim.HT.Get(fkv)
			if !hit {
				// The pipeline's semijoins guarantee membership; a miss
				// here means the FK flipped after the join under late
				// detection - drop the row silently, exactly the
				// documented caveat.
				continue rows
			}
			av := dim.Attr.Get(int(bp))
			if code := dim.Attr.Code(); code != nil {
				d, ok := code.Check(av)
				if !ok {
					if a.detect && a.log != nil {
						a.log.Record(dim.Attr.Name(), uint64(bp))
					}
					continue rows
				}
				av = d
			}
			if av >= 1<<16 {
				return fmt.Errorf("vat: group component %q value %d exceeds 16 bits", dim.Attr.Name(), av)
			}
			tuple[c] = av
			packed |= av << (16 * uint(c))
		}
		mv := a.measure.Get(int(p))
		if a.mCode != nil && a.detect {
			if _, ok := a.mCode.Check(mv); !ok {
				if a.log != nil {
					a.log.Record(a.measure.Name(), uint64(p))
				}
				continue rows
			}
		}
		gid, inserted := a.ht.GetOrInsert(packed, uint32(len(a.groups)))
		if inserted {
			a.groups = append(a.groups, tuple)
			a.packed = append(a.packed, packed)
			a.rawSums = append(a.rawSums, 0)
		}
		a.rawSums[gid] += mv // hardened: (Σd)·A under the widened code
	}
	return nil
}

// merge folds another accumulator's groups into this one, preserving
// this accumulator's first-occurrence group order and appending the
// other's unseen groups in their order. Called in morsel order it
// reproduces the serial group numbering exactly. Hardened raw sums add
// in the ring (Eq. 5), so the combined sum equals the serial one.
func (a *groupAcc) merge(other *groupAcc) {
	for g, pk := range other.packed {
		gid, inserted := a.ht.GetOrInsert(pk, uint32(len(a.groups)))
		if inserted {
			a.groups = append(a.groups, other.groups[g])
			a.packed = append(a.packed, pk)
			a.rawSums = append(a.rawSums, 0)
		}
		a.rawSums[gid] += other.rawSums[g]
	}
}

// finalize verifies (hardened case) and decodes the accumulated sums,
// logging corrupt accumulators into log. It runs once, after any merging,
// so the parallel path checks the same final values as the serial one.
func (a *groupAcc) finalize(log *ops.ErrorLog) (groups [][]uint64, sums []uint64, err error) {
	var acc *an.Code
	if a.mCode != nil {
		acc, err = an.New(a.mCode.A(), 48)
		if err != nil {
			return nil, nil, err
		}
	}
	sums = make([]uint64, len(a.rawSums))
	for g, s := range a.rawSums {
		if acc == nil {
			sums[g] = s
			continue
		}
		d, ok := acc.Check(s)
		if !ok {
			if a.detect && log != nil {
				log.Record(ops.VecLogName("sum("+a.measure.Name()+")"), uint64(g))
			}
			continue
		}
		sums[g] = d
	}
	return a.groups, sums, nil
}

// GroupSum is the vectorized grouped-aggregation sink: it drains the
// pipeline batch by batch, resolves the group attributes through the
// dimension tables, and accumulates the hardened (or plain) measure per
// group - the vector-at-a-time form of the ops.GroupBy + ops.SumGrouped
// tail. Group keys pack 16 bits per component like the column-at-a-time
// engine. It returns the decoded group tuples and sums.
func GroupSum(in Operator, dims []DimAttr, measure *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	if len(dims) == 0 || len(dims) > 4 {
		return nil, nil, fmt.Errorf("vat: group-sum supports 1..4 group attributes, got %d", len(dims))
	}
	acc := newGroupAcc(dims, measure, o)
	pos := make([]uint32, VectorSize)
	for {
		n, done, err := in.Next(pos)
		if err != nil {
			return nil, nil, err
		}
		if err := acc.consume(pos[:n]); err != nil {
			return nil, nil, err
		}
		if done {
			break
		}
	}
	return acc.finalize(o.log())
}

// SourceFunc builds one pipeline instance covering fact rows
// [start, end) - typically NewScanRange plus the filter/join stack -
// using the supplied Opts (which carry the morsel's private error log
// under GroupSumParallel).
type SourceFunc func(start, end int, o *Opts) (Operator, error)

// GroupSumParallel is the morsel-driven form of GroupSum: the fact rows
// are cut into morsels, each morsel runs its own pipeline instance (built
// by src) into a private accumulator with a private error log, and the
// partial states merge in morsel order. Because every pipeline emits
// global positions and merging preserves first-occurrence group order and
// log entry order, the groups, sums, and detected-error positions are
// identical to a serial GroupSum over the full extent. Without a pool (or
// when the input is a single morsel) it degrades to exactly that.
func GroupSumParallel(src SourceFunc, totalRows int, dims []DimAttr, measure *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	if len(dims) == 0 || len(dims) > 4 {
		return nil, nil, fmt.Errorf("vat: group-sum supports 1..4 group attributes, got %d", len(dims))
	}
	p := o.par(totalRows)
	if p == nil {
		in, err := src(0, totalRows, o)
		if err != nil {
			return nil, nil, err
		}
		return GroupSum(in, dims, measure, o)
	}

	ms := p.MorselSize()
	count := (totalRows + ms - 1) / ms
	parts := make([]*groupAcc, count)
	logs := make([]*ops.ErrorLog, count)
	errs := make([]error, count)
	p.ForEach(totalRows, func(m, start, end int) {
		logs[m] = ops.NewErrorLog()
		mo := &Opts{Detect: o.detect(), Log: logs[m]}
		in, err := src(start, end, mo)
		if err != nil {
			errs[m] = err
			return
		}
		acc := newGroupAcc(dims, measure, mo)
		pos := make([]uint32, VectorSize)
		for {
			n, done, err := in.Next(pos)
			if err != nil {
				errs[m] = err
				return
			}
			if err := acc.consume(pos[:n]); err != nil {
				errs[m] = err
				return
			}
			if done {
				break
			}
		}
		parts[m] = acc
	})

	log := o.log()
	total := newGroupAcc(dims, measure, o)
	for m, part := range parts {
		if log != nil {
			log.Merge(logs[m])
		}
		if errs[m] != nil {
			// Serial execution would have stopped here; drop the later
			// morsels' logs and report the first error in row order.
			return nil, nil, errs[m]
		}
		total.merge(part)
	}
	return total.finalize(log)
}

// GroupSumResult canonicalizes GroupSum output into the shared Result
// form so the two engines' answers compare directly.
func GroupSumResult(groups [][]uint64, sums []uint64) (*ops.Result, error) {
	if len(groups) != len(sums) {
		return nil, fmt.Errorf("vat: %d groups vs %d sums", len(groups), len(sums))
	}
	r := &ops.Result{Keys: groups, Aggs: sums}
	r.Sort()
	return r, nil
}
