package vat

import (
	"fmt"

	"ahead/internal/an"
	"ahead/internal/hashmap"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// DimAttr names one group attribute reached through a dimension join: for
// every surviving fact row, FK is probed against HT (decoded key ->
// build position, an ops.HashBuild table) and Attr is fetched at the
// matched position.
type DimAttr struct {
	FK   *storage.Column
	HT   *hashmap.U64
	Attr *storage.Column
}

// GroupSum is the vectorized grouped-aggregation sink: it drains the
// pipeline batch by batch, resolves the group attributes through the
// dimension tables, and accumulates the hardened (or plain) measure per
// group - the vector-at-a-time form of the ops.GroupBy + ops.SumGrouped
// tail. Group keys pack 16 bits per component like the column-at-a-time
// engine. It returns the decoded group tuples and sums.
func GroupSum(in Operator, dims []DimAttr, measure *storage.Column, o *Opts) (groups [][]uint64, sums []uint64, err error) {
	if len(dims) == 0 || len(dims) > 4 {
		return nil, nil, fmt.Errorf("vat: group-sum supports 1..4 group attributes, got %d", len(dims))
	}
	detect := o.detect()
	log := o.log()
	mCode := measure.Code()
	var acc *an.Code
	if mCode != nil {
		acc, err = an.New(mCode.A(), 48)
		if err != nil {
			return nil, nil, err
		}
	}

	ht := hashmap.New(1024)
	var rawSums []uint64
	pos := make([]uint32, VectorSize)
	for {
		n, done, err := in.Next(pos)
		if err != nil {
			return nil, nil, err
		}
	rows:
		for _, p := range pos[:n] {
			var packed uint64
			tuple := make([]uint64, len(dims))
			for c, dim := range dims {
				fkv := dim.FK.Get(int(p))
				if code := dim.FK.Code(); code != nil {
					d, ok := code.Check(fkv)
					if !ok {
						if detect && log != nil {
							log.Record(dim.FK.Name(), uint64(p))
						}
						continue rows
					}
					fkv = d
				}
				bp, hit := dim.HT.Get(fkv)
				if !hit {
					// The pipeline's semijoins guarantee membership;
					// a miss here means the FK flipped after the join
					// under late detection - drop the row silently,
					// exactly the documented caveat.
					continue rows
				}
				av := dim.Attr.Get(int(bp))
				if code := dim.Attr.Code(); code != nil {
					d, ok := code.Check(av)
					if !ok {
						if detect && log != nil {
							log.Record(dim.Attr.Name(), uint64(bp))
						}
						continue rows
					}
					av = d
				}
				if av >= 1<<16 {
					return nil, nil, fmt.Errorf("vat: group component %q value %d exceeds 16 bits", dim.Attr.Name(), av)
				}
				tuple[c] = av
				packed |= av << (16 * uint(c))
			}
			mv := measure.Get(int(p))
			if mCode != nil && detect {
				if _, ok := mCode.Check(mv); !ok {
					if log != nil {
						log.Record(measure.Name(), uint64(p))
					}
					continue rows
				}
			}
			gid, inserted := ht.GetOrInsert(packed, uint32(len(groups)))
			if inserted {
				groups = append(groups, tuple)
				rawSums = append(rawSums, 0)
			}
			rawSums[gid] += mv // hardened: (Σd)·A under the widened code
		}
		if done {
			break
		}
	}

	sums = make([]uint64, len(rawSums))
	for g, s := range rawSums {
		if acc == nil {
			sums[g] = s
			continue
		}
		d, ok := acc.Check(s)
		if !ok {
			if detect && log != nil {
				log.Record(ops.VecLogName("sum("+measure.Name()+")"), uint64(g))
			}
			continue
		}
		sums[g] = d
	}
	return groups, sums, nil
}

// GroupSumResult canonicalizes GroupSum output into the shared Result
// form so the two engines' answers compare directly.
func GroupSumResult(groups [][]uint64, sums []uint64) (*ops.Result, error) {
	if len(groups) != len(sums) {
		return nil, fmt.Errorf("vat: %d groups vs %d sums", len(groups), len(sums))
	}
	r := &ops.Result{Keys: groups, Aggs: sums}
	r.Sort()
	return r, nil
}
