package vat

import (
	"testing"

	"ahead/internal/an"
	"ahead/internal/exec"
	"ahead/internal/hashmap"
	"ahead/internal/ops"
	"ahead/internal/ssb"
	"ahead/internal/storage"
)

// q21Pipeline runs the Q2.1 star flight through the vector-at-a-time
// engine: semijoins against part/supplier/date, grouped revenue sum by
// (brand, year) - the same key order as the column-at-a-time plan.
func q21Pipeline(t *testing.T, db *exec.DB, hardened bool, o *Opts) *ops.Result {
	t.Helper()
	pick := func(name string) *storage.Table {
		if hardened {
			return db.Hardened(name)
		}
		return db.Plain(name)
	}
	lo, part, supp, date := pick("lineorder"), pick("part"), pick("supplier"), pick("date")
	opsOpts := &ops.Opts{Detect: o.detect(), Log: o.log()}

	buildHT := func(tab *storage.Table, filterCol string, lov, hiv uint64, key string) *hashmap.U64 {
		sel, err := ops.Filter(tab.MustColumn(filterCol), lov, hiv, opsOpts)
		if err != nil {
			t.Fatal(err)
		}
		ht, err := ops.HashBuild(tab.MustColumn(key), sel, opsOpts)
		if err != nil {
			t.Fatal(err)
		}
		return ht
	}
	catDict := db.Plain("part").MustColumn("p_category").Dict()
	mfgr12, _ := catDict.Code("MFGR#12")
	regDict := db.Plain("supplier").MustColumn("s_region").Dict()
	america, _ := regDict.Code("AMERICA")

	partHT := buildHT(part, "p_category", uint64(mfgr12), uint64(mfgr12), "p_partkey")
	suppHT := buildHT(supp, "s_region", uint64(america), uint64(america), "s_suppkey")
	dateHT := buildHT(date, "d_datekey", 0, ^uint64(0), "d_datekey")

	scan, err := NewScan(lo.MustColumn("lo_orderkey"), 0, ^uint64(0), o)
	if err != nil {
		t.Fatal(err)
	}
	j1 := NewSemiJoin(scan, lo.MustColumn("lo_partkey"), partHT, o)
	j2 := NewSemiJoin(j1, lo.MustColumn("lo_suppkey"), suppHT, o)
	j3 := NewSemiJoin(j2, lo.MustColumn("lo_orderdate"), dateHT, o)
	groups, sums, err := GroupSum(j3, []DimAttr{
		{FK: lo.MustColumn("lo_partkey"), HT: partHT, Attr: part.MustColumn("p_brand1")},
		{FK: lo.MustColumn("lo_orderdate"), HT: dateHT, Attr: date.MustColumn("d_year")},
	}, lo.MustColumn("lo_revenue"), o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GroupSumResult(groups, sums)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestVATGroupedQueryAgreesWithColumnAtATime(t *testing.T) {
	data, err := ssb.Generate(0.005, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := exec.Run(db, exec.Unprotected, ops.Scalar, ssb.Queries["Q2.1"])
	if err != nil {
		t.Fatal(err)
	}
	if ref.Rows() == 0 {
		t.Fatal("degenerate workload")
	}
	// Unprotected VAT.
	if got := q21Pipeline(t, db, false, &Opts{}); !got.Equal(ref) {
		t.Fatalf("unprotected VAT Q2.1 differs (%d vs %d rows)", got.Rows(), ref.Rows())
	}
	// Hardened, late.
	if got := q21Pipeline(t, db, true, &Opts{}); !got.Equal(ref) {
		t.Fatal("late VAT Q2.1 differs")
	}
	// Hardened, continuous.
	log := ops.NewErrorLog()
	got := q21Pipeline(t, db, true, &Opts{Detect: true, Log: log})
	if !got.Equal(ref) {
		t.Fatal("continuous VAT Q2.1 differs")
	}
	if log.Count() != 0 {
		t.Fatalf("clean data logged %d", log.Count())
	}
}

func TestVATGroupSumDetection(t *testing.T) {
	data, err := ssb.Generate(0.005, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a revenue value on a row that qualifies (found by running
	// the unprotected pipeline first and picking any surviving row).
	// Simpler: corrupt many and require at least one detection.
	rev := db.Hardened("lineorder").MustColumn("lo_revenue")
	for i := 0; i < rev.Len(); i += 3 {
		rev.Corrupt(i, 1<<6)
	}
	log := ops.NewErrorLog()
	q21Pipeline(t, db, true, &Opts{Detect: true, Log: log})
	if log.Count() == 0 {
		t.Fatal("continuous VAT missed all revenue corruptions")
	}
	if pos, err := log.Positions("lo_revenue"); err != nil || len(pos) == 0 {
		t.Fatalf("revenue error vector: %v, %v", pos, err)
	}
}

func TestGroupSumValidation(t *testing.T) {
	col, _ := storage.NewColumn("v", storage.TinyInt)
	col.Append(1)
	scan, err := NewScan(col, 0, 255, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := GroupSum(scan, nil, col, nil); err == nil {
		t.Error("no dims must error")
	}
	if _, err := GroupSumResult([][]uint64{{1}}, nil); err == nil {
		t.Error("length mismatch must error")
	}
}

// q21ProfitPipeline is q21Pipeline with the Q4-style difference
// aggregate: grouped sum(lo_revenue - lo_supplycost).
func q21ProfitPipeline(t *testing.T, db *exec.DB, hardened bool, o *Opts) *ops.Result {
	t.Helper()
	pick := func(name string) *storage.Table {
		if hardened {
			return db.Hardened(name)
		}
		return db.Plain(name)
	}
	lo, part, supp, date := pick("lineorder"), pick("part"), pick("supplier"), pick("date")
	opsOpts := &ops.Opts{Detect: o.detect(), Log: o.log()}

	buildHT := func(tab *storage.Table, filterCol string, lov, hiv uint64, key string) *hashmap.U64 {
		sel, err := ops.Filter(tab.MustColumn(filterCol), lov, hiv, opsOpts)
		if err != nil {
			t.Fatal(err)
		}
		ht, err := ops.HashBuild(tab.MustColumn(key), sel, opsOpts)
		if err != nil {
			t.Fatal(err)
		}
		return ht
	}
	catDict := db.Plain("part").MustColumn("p_category").Dict()
	mfgr12, _ := catDict.Code("MFGR#12")
	regDict := db.Plain("supplier").MustColumn("s_region").Dict()
	america, _ := regDict.Code("AMERICA")

	partHT := buildHT(part, "p_category", uint64(mfgr12), uint64(mfgr12), "p_partkey")
	suppHT := buildHT(supp, "s_region", uint64(america), uint64(america), "s_suppkey")
	dateHT := buildHT(date, "d_datekey", 0, ^uint64(0), "d_datekey")

	scan, err := NewScan(lo.MustColumn("lo_orderkey"), 0, ^uint64(0), o)
	if err != nil {
		t.Fatal(err)
	}
	j1 := NewSemiJoin(scan, lo.MustColumn("lo_partkey"), partHT, o)
	j2 := NewSemiJoin(j1, lo.MustColumn("lo_suppkey"), suppHT, o)
	j3 := NewSemiJoin(j2, lo.MustColumn("lo_orderdate"), dateHT, o)
	groups, sums, err := GroupSumDiff(j3, []DimAttr{
		{FK: lo.MustColumn("lo_partkey"), HT: partHT, Attr: part.MustColumn("p_brand1")},
		{FK: lo.MustColumn("lo_orderdate"), HT: dateHT, Attr: date.MustColumn("d_year")},
	}, lo.MustColumn("lo_revenue"), lo.MustColumn("lo_supplycost"), o)
	if err != nil {
		t.Fatal(err)
	}
	res, err := GroupSumResult(groups, sums)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestVATGroupSumDiff checks the profit aggregate against the obvious
// reference - two plain grouped sums subtracted per group - and then
// requires the hardened late and continuous runs to reproduce it.
func TestVATGroupSumDiff(t *testing.T) {
	data, err := ssb.Generate(0.005, 42)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	ref := q21Pipeline(t, db, false, &Opts{})
	if ref.Rows() == 0 {
		t.Fatal("degenerate workload")
	}
	// Reference: plain diff pipeline (sum(rev) and sum(cost) share the
	// survivor set and group order, so the difference is exact).
	want := q21ProfitPipeline(t, db, false, &Opts{})
	if want.Rows() != ref.Rows() {
		t.Fatalf("profit aggregate changed the group set: %d vs %d rows", want.Rows(), ref.Rows())
	}
	// Hardened, late.
	if got := q21ProfitPipeline(t, db, true, &Opts{}); !got.Equal(want) {
		t.Fatal("late VAT profit aggregate differs from plain")
	}
	// Hardened, continuous.
	log := ops.NewErrorLog()
	got := q21ProfitPipeline(t, db, true, &Opts{Detect: true, Log: log})
	if !got.Equal(want) {
		t.Fatal("continuous VAT profit aggregate differs from plain")
	}
	if log.Count() != 0 {
		t.Fatalf("clean data logged %d", log.Count())
	}
	// Re-encode one measure only, as the adaptive controller does to a
	// live column: the profit aggregate must renormalize the pair
	// (an.DiffFactor) instead of failing, in both hardened modes.
	rev := db.Hardened("lineorder").MustColumn("lo_revenue")
	smaller, ok := an.NextSmaller(rev.Code())
	if !ok {
		t.Fatal("no alternative A for the revenue width class")
	}
	if _, err := db.RehardenColumn("lineorder", "lo_revenue", smaller); err != nil {
		t.Fatal(err)
	}
	if got := q21ProfitPipeline(t, db, true, &Opts{}); !got.Equal(want) {
		t.Fatal("late VAT profit aggregate differs from plain after partial reharden")
	}
	mlog := ops.NewErrorLog()
	if got := q21ProfitPipeline(t, db, true, &Opts{Detect: true, Log: mlog}); !got.Equal(want) {
		t.Fatal("continuous VAT profit aggregate differs from plain after partial reharden")
	}
	if mlog.Count() != 0 {
		t.Fatalf("partial reharden logged %d on clean data", mlog.Count())
	}
	// A corrupt supplycost word must be logged and its row dropped.
	cost := db.Hardened("lineorder").MustColumn("lo_supplycost")
	for i := 0; i < cost.Len(); i += 3 {
		cost.Corrupt(i, 1<<7)
	}
	dlog := ops.NewErrorLog()
	q21ProfitPipeline(t, db, true, &Opts{Detect: true, Log: dlog})
	if pos, err := dlog.Positions("lo_supplycost"); err != nil || len(pos) == 0 {
		t.Fatalf("supplycost error vector: %v, %v", pos, err)
	}
}

func TestGroupSumDiffValidation(t *testing.T) {
	col, _ := storage.NewColumn("v", storage.TinyInt)
	col.Append(1)
	scan, err := NewScan(col, 0, 255, nil)
	if err != nil {
		t.Fatal(err)
	}
	ht := hashmap.New(8)
	ht.Put(1, 0)
	dims := []DimAttr{{FK: col, HT: ht, Attr: col}}
	if _, _, err := GroupSumDiff(scan, dims, col, nil, nil); err == nil {
		t.Error("nil second measure must error")
	}
	src := func(start, end int, o *Opts) (Operator, error) {
		return NewScanRange(col, 0, 255, start, end, o)
	}
	if _, _, err := GroupSumDiffParallel(src, col.Len(), dims, col, nil, nil); err == nil {
		t.Error("nil second measure must error in the parallel form")
	}
}
