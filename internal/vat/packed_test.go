package vat

import (
	"testing"

	"ahead/internal/an"
	"ahead/internal/hashmap"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// packedProbeFixture builds an n-row FK column hardened with a 12-bit A
// (20 code bits: wide storage widens to u32, the mirror keeps ~21 bits
// per lane) and a build set containing every third key.
func packedProbeFixture(tb testing.TB, n, dim int) (*storage.Column, *hashmap.U64) {
	tb.Helper()
	c, err := storage.NewColumn("fk", storage.TinyInt)
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		c.Append(uint64(i*7) % uint64(dim))
	}
	h, err := c.Harden(an.MustNew(3989, 8))
	if err != nil {
		tb.Fatal(err)
	}
	if h.Packed() == nil {
		tb.Fatal("20-bit code words must carry a packed mirror")
	}
	ht := hashmap.New(dim / 3)
	for k := 0; k < dim; k += 3 {
		ht.Put(uint64(k), uint32(k))
	}
	return h, ht
}

// drain pulls the pipeline dry and returns every surviving position.
func drain(tb testing.TB, op Operator) []uint32 {
	tb.Helper()
	var out []uint32
	pos := make([]uint32, VectorSize)
	for {
		n, done, err := op.Next(pos)
		if err != nil {
			tb.Fatal(err)
		}
		out = append(out, pos[:n]...)
		if done {
			return out
		}
	}
}

// TestSemiJoinPackedProbeMatchesWide: the packed-input probe keeps
// exactly the positions, and logs exactly the detections, of the
// wide-array probe - clean and with injected faults, late and
// continuous.
func TestSemiJoinPackedProbeMatchesWide(t *testing.T) {
	col, ht := packedProbeFixture(t, 5_000, 200)
	col.Corrupt(11, 1<<5)
	col.Corrupt(3333, 1<<18)
	for _, detect := range []bool{false, true} {
		wantLog, gotLog := ops.NewErrorLog(), ops.NewErrorLog()
		wideOpts := &Opts{Detect: detect, Log: wantLog, NoPacked: true}
		scan, err := NewScan(col, 0, ^uint64(0), wideOpts)
		if err != nil {
			t.Fatal(err)
		}
		wide := NewSemiJoin(scan, col, ht, wideOpts)
		if wide.lanes != nil {
			t.Fatal("NoPacked probe must read the wide array")
		}
		want := drain(t, wide)

		packedOpts := &Opts{Detect: detect, Log: gotLog}
		scan, err = NewScan(col, 0, ^uint64(0), packedOpts)
		if err != nil {
			t.Fatal(err)
		}
		packed := NewSemiJoin(scan, col, ht, packedOpts)
		if packed.lanes == nil {
			t.Fatal("mirrored column must enable the packed probe")
		}
		got := drain(t, packed)

		if len(got) != len(want) {
			t.Fatalf("detect=%v: packed probe kept %d, wide %d", detect, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("detect=%v: position %d differs: %d vs %d", detect, i, got[i], want[i])
			}
		}
		if !gotLog.Equal(wantLog) {
			t.Fatalf("detect=%v: packed log %v, wide %v", detect, gotLog.Entries(), wantLog.Entries())
		}
		if detect && wantLog.Count() != 2 {
			t.Fatalf("continuous probe logged %d faults, want 2", wantLog.Count())
		}
	}
}

// The bench pair of the packed-input probe: same pipeline, FK keys read
// from the packed lanes vs the widened u32 array.
func benchSemiJoinProbe(b *testing.B, noPacked bool) {
	col, ht := packedProbeFixture(b, 1_000_000, 3_000)
	o := &Opts{Detect: true, Log: ops.NewErrorLog(), NoPacked: noPacked}
	b.SetBytes(int64(col.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scan, err := NewScan(col, 0, ^uint64(0), o)
		if err != nil {
			b.Fatal(err)
		}
		join := NewSemiJoin(scan, col, ht, o)
		pos := make([]uint32, VectorSize)
		for {
			n, done, err := join.Next(pos)
			if err != nil {
				b.Fatal(err)
			}
			_ = n
			if done {
				break
			}
		}
	}
}

func BenchmarkVATSemiJoinPackedProbe(b *testing.B) { benchSemiJoinProbe(b, false) }
func BenchmarkVATSemiJoinWideProbe(b *testing.B)   { benchSemiJoinProbe(b, true) }
