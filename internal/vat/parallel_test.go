package vat

import (
	"testing"

	"ahead/internal/exec"
	"ahead/internal/hashmap"
	"ahead/internal/ops"
	"ahead/internal/ssb"
	"ahead/internal/storage"
)

// q21Source builds the Q2.1 pipeline over fact rows [start, end) - the
// SourceFunc GroupSumParallel instantiates once per morsel. The hash
// tables are built once and shared: probes are pure reads.
func q21Source(t *testing.T, db *exec.DB, partHT, suppHT, dateHT *hashmap.U64) (SourceFunc, []DimAttr, *storage.Column) {
	t.Helper()
	lo := db.Hardened("lineorder")
	part, date := db.Hardened("part"), db.Hardened("date")
	src := func(start, end int, o *Opts) (Operator, error) {
		scan, err := NewScanRange(lo.MustColumn("lo_orderkey"), 0, ^uint64(0), start, end, o)
		if err != nil {
			return nil, err
		}
		j1 := NewSemiJoin(scan, lo.MustColumn("lo_partkey"), partHT, o)
		j2 := NewSemiJoin(j1, lo.MustColumn("lo_suppkey"), suppHT, o)
		return NewSemiJoin(j2, lo.MustColumn("lo_orderdate"), dateHT, o), nil
	}
	dims := []DimAttr{
		{FK: lo.MustColumn("lo_partkey"), HT: partHT, Attr: part.MustColumn("p_brand1")},
		{FK: lo.MustColumn("lo_orderdate"), HT: dateHT, Attr: date.MustColumn("d_year")},
	}
	return src, dims, lo.MustColumn("lo_revenue")
}

// TestGroupSumParallelMatchesSerial runs the vectorized Q2.1 pipeline
// serially and morsel-parallel, with corrupted revenue words spread
// across morsels, and requires identical groups, sums, and detected-error
// positions.
func TestGroupSumParallelMatchesSerial(t *testing.T) {
	data, err := ssb.Generate(0.01, 21)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	rev := db.Hardened("lineorder").MustColumn("lo_revenue")
	// Dense stride: only the ~1% of rows surviving the semijoins reach
	// the measure check, and detections must land in several morsels.
	for i := 100; i < rev.Len(); i += 50 {
		rev.Corrupt(i, 1<<9)
	}

	opsOpts := &ops.Opts{}
	buildHT := func(tab *storage.Table, filterCol string, lov, hiv uint64, key string) *hashmap.U64 {
		sel, err := ops.Filter(tab.MustColumn(filterCol), lov, hiv, opsOpts)
		if err != nil {
			t.Fatal(err)
		}
		ht, err := ops.HashBuild(tab.MustColumn(key), sel, opsOpts)
		if err != nil {
			t.Fatal(err)
		}
		return ht
	}
	catDict := db.Plain("part").MustColumn("p_category").Dict()
	mfgr12, _ := catDict.Code("MFGR#12")
	regDict := db.Plain("supplier").MustColumn("s_region").Dict()
	america, _ := regDict.Code("AMERICA")
	partHT := buildHT(db.Hardened("part"), "p_category", uint64(mfgr12), uint64(mfgr12), "p_partkey")
	suppHT := buildHT(db.Hardened("supplier"), "s_region", uint64(america), uint64(america), "s_suppkey")
	dateHT := buildHT(db.Hardened("date"), "d_datekey", 0, ^uint64(0), "d_datekey")

	src, dims, measure := q21Source(t, db, partHT, suppHT, dateHT)
	totalRows := db.Hardened("lineorder").MustColumn("lo_orderkey").Len()

	serialLog := ops.NewErrorLog()
	serialIn, err := src(0, totalRows, &Opts{Detect: true, Log: serialLog})
	if err != nil {
		t.Fatal(err)
	}
	sGroups, sSums, err := GroupSum(serialIn, dims, measure, &Opts{Detect: true, Log: serialLog})
	if err != nil {
		t.Fatal(err)
	}

	pool := exec.NewPoolMorsel(4, 4096)
	defer pool.Close()
	parLog := ops.NewErrorLog()
	pGroups, pSums, err := GroupSumParallel(src, totalRows, dims, measure,
		&Opts{Detect: true, Log: parLog, Par: pool})
	if err != nil {
		t.Fatal(err)
	}

	if len(pGroups) != len(sGroups) {
		t.Fatalf("parallel built %d groups, serial %d", len(pGroups), len(sGroups))
	}
	for g := range sGroups {
		if len(pGroups[g]) != len(sGroups[g]) {
			t.Fatalf("group %d tuple width differs", g)
		}
		for c := range sGroups[g] {
			if pGroups[g][c] != sGroups[g][c] {
				t.Fatalf("group %d component %d: parallel %d vs serial %d",
					g, c, pGroups[g][c], sGroups[g][c])
			}
		}
		if pSums[g] != sSums[g] {
			t.Fatalf("group %d sum: parallel %d vs serial %d", g, pSums[g], sSums[g])
		}
	}
	if serialLog.Count() == 0 {
		t.Fatal("serial run detected nothing; corruption setup is broken")
	}
	if !serialLog.Equal(parLog) {
		t.Fatalf("parallel log (%d entries) differs from serial (%d entries)",
			parLog.Count(), serialLog.Count())
	}
}

// TestGroupSumParallelSerialFallback checks the no-pool path degrades to
// plain GroupSum.
func TestGroupSumParallelSerialFallback(t *testing.T) {
	col, err := storage.NewColumn("k", storage.TinyInt)
	if err != nil {
		t.Fatal(err)
	}
	measure, err := storage.NewColumn("m", storage.ShortInt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		col.Append(uint64(i % 4))
		measure.Append(uint64(i))
	}
	ht := hashmap.New(8)
	for k := uint64(0); k < 4; k++ {
		ht.Put(k, uint32(k))
	}
	dims := []DimAttr{{FK: col, HT: ht, Attr: col}}
	src := func(start, end int, o *Opts) (Operator, error) {
		return NewScanRange(col, 0, 255, start, end, o)
	}
	groups, sums, err := GroupSumParallel(src, col.Len(), dims, measure, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 4 {
		t.Fatalf("got %d groups, want 4", len(groups))
	}
	var total uint64
	for _, s := range sums {
		total += s
	}
	if total != 99*100/2 {
		t.Fatalf("sums total %d, want %d", total, 99*100/2)
	}
}
