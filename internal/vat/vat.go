// Package vat implements a vector-at-a-time query engine, the second of
// the two state-of-the-art processing models Section 5 names ("on-the-fly
// error detection during query processing becomes now possible for both
// ... column-at-a-time and vector-at-a-time with our hardened storage
// concept"). Operators form a pull-based pipeline exchanging fixed-size
// batches of row positions (MonetDB/X100 style, the paper's reference
// [87] Vectorwise), instead of materializing whole-column intermediates
// like internal/ops.
//
// The same two properties carry AN hardening through unchanged: the
// column layout is untouched (only wider), and predicates evaluate on
// hardened values directly. Every operator supports the same detection
// split as the column-at-a-time engine: hardened data without per-value
// checks (late detection) or with them (continuous detection), logging
// corrupted positions into the shared hardened error vectors.
package vat

import (
	"fmt"

	"ahead/internal/an"
	"ahead/internal/bitpack"
	"ahead/internal/hashmap"
	"ahead/internal/ops"
	"ahead/internal/storage"
)

// VectorSize is the number of positions exchanged per batch.
const VectorSize = 1024

// Operator produces batches of qualifying row positions. Next fills pos
// (capacity VectorSize) and returns the count; done reports exhaustion.
type Operator interface {
	Next(pos []uint32) (n int, done bool, err error)
}

// Opts mirrors ops.Opts for the vectorized engine.
type Opts struct {
	Detect bool
	Log    *ops.ErrorLog
	// NoPacked forces the semijoin probe to read FK keys from the wide
	// array even when the column carries a packed lane mirror - the A/B
	// switch of the packed-probe bench pair. Results are identical.
	NoPacked bool
	// Par runs GroupSumParallel's morsel pipelines on a worker pool when
	// non-nil (exec.Pool implements it); nil keeps everything serial.
	Par ops.Parallel
}

func (o *Opts) detect() bool { return o != nil && o.Detect }
func (o *Opts) log() *ops.ErrorLog {
	if o == nil {
		return nil
	}
	return o.Log
}

// par returns the pool when parallel execution is on and worthwhile for
// n rows, mirroring the gate of the column-at-a-time engine.
func (o *Opts) par(n int) ops.Parallel {
	if o == nil || o.Par == nil {
		return nil
	}
	if o.Par.Workers() < 2 || n <= o.Par.MorselSize() {
		return nil
	}
	return o.Par
}

// colRange precomputes the comparison constants for one range predicate
// over a possibly hardened column.
type colRange struct {
	col      *storage.Column
	code     *an.Code
	detect   bool
	log      *ops.ErrorLog
	lo, span uint64 // raw-domain bounds (hardened if code != nil && !detect)
	plainLo  uint64 // decoded-domain bounds for the checked path
	plainSpn uint64
	empty    bool
}

func newColRange(col *storage.Column, lo, hi uint64, o *Opts) (*colRange, error) {
	r := &colRange{col: col, code: col.Code(), detect: o.detect(), log: o.log()}
	if lo > hi {
		r.empty = true
		return r, nil
	}
	if r.code != nil {
		if lo > r.code.MaxData() {
			r.empty = true
			return r, nil
		}
		if hi > r.code.MaxData() {
			hi = r.code.MaxData()
		}
		r.plainLo, r.plainSpn = lo, hi-lo
		if !r.detect {
			loC, hiC := r.code.Encode(lo), r.code.Encode(hi)
			r.lo, r.span = loC, hiC-loC
		}
		return r, nil
	}
	max := uint64(1)<<(uint(col.Width())*8) - 1
	if col.Width() == 8 {
		max = ^uint64(0)
	}
	if lo > max {
		r.empty = true
		return r, nil
	}
	if hi > max {
		hi = max
	}
	r.lo, r.span = lo, hi-lo
	return r, nil
}

// test evaluates the predicate at one position, logging corruption.
func (r *colRange) test(pos uint32) bool {
	if r.empty {
		return false
	}
	v := r.col.Get(int(pos))
	if r.code != nil && r.detect {
		d, ok := r.code.Check(v)
		if !ok {
			if r.log != nil {
				r.log.Record(r.col.Name(), uint64(pos))
			}
			return false
		}
		return d-r.plainLo <= r.plainSpn
	}
	return v-r.lo <= r.span
}

// Scan is the pipeline source: it walks a column and emits the positions
// whose value lies in [lo, hi].
type Scan struct {
	rng  *colRange
	next int
	rows int
}

// NewScan builds the source over the column's full extent.
func NewScan(col *storage.Column, lo, hi uint64, o *Opts) (*Scan, error) {
	return NewScanRange(col, lo, hi, 0, col.Len(), o)
}

// NewScanRange builds the source over rows [start, end) only - the morsel
// form of NewScan. Emitted positions stay global, so downstream operators
// and error logs see the same row numbers as a full scan.
func NewScanRange(col *storage.Column, lo, hi uint64, start, end int, o *Opts) (*Scan, error) {
	rng, err := newColRange(col, lo, hi, o)
	if err != nil {
		return nil, err
	}
	if start < 0 {
		start = 0
	}
	if end > col.Len() {
		end = col.Len()
	}
	return &Scan{rng: rng, next: start, rows: end}, nil
}

// Next implements Operator.
func (s *Scan) Next(pos []uint32) (int, bool, error) {
	n := 0
	for s.next < s.rows && n < len(pos) {
		p := uint32(s.next)
		s.next++
		if s.rng.test(p) {
			pos[n] = p
			n++
		}
	}
	return n, s.next >= s.rows, nil
}

// Filter refines the upstream batch with another range predicate.
type Filter struct {
	in  Operator
	rng *colRange
	buf []uint32
}

// NewFilter stacks a conjunctive predicate onto in.
func NewFilter(in Operator, col *storage.Column, lo, hi uint64, o *Opts) (*Filter, error) {
	rng, err := newColRange(col, lo, hi, o)
	if err != nil {
		return nil, err
	}
	return &Filter{in: in, rng: rng, buf: make([]uint32, VectorSize)}, nil
}

// Next implements Operator. A batch may come back smaller than the
// upstream one; exhaustion propagates.
func (f *Filter) Next(pos []uint32) (int, bool, error) {
	for {
		n, done, err := f.in.Next(f.buf)
		if err != nil {
			return 0, done, err
		}
		out := 0
		for _, p := range f.buf[:n] {
			if f.rng.test(p) {
				pos[out] = p
				out++
			}
		}
		if out > 0 || done {
			return out, done, nil
		}
	}
}

// SemiJoin keeps upstream positions whose (softened) FK value hits the
// build table. For dense key domains the constructor caches a bitset
// over the build keys so membership is one L1-resident bit test per
// vector entry instead of a cache-missing hash probe.
type SemiJoin struct {
	in      Operator
	col     *storage.Column
	code    *an.Code
	lanes   *bitpack.Lanes // packed mirror of col (nil: read the wide array)
	ht      *hashmap.U64
	keyBits []uint64 // dense membership index over the build keys (nil: probe the table)
	keyMax  uint64
	detect  bool
	log     *ops.ErrorLog
	buf     []uint32
}

// NewSemiJoin stacks an FK-membership predicate onto in. The hash table
// maps decoded key values to build positions (ops.HashBuild output).
// When the FK column carries a packed lane mirror the probe reads its
// code words from the lanes instead of the wide array: codes between 17
// and MaxPackedBits bits widen to u32 storage, so the mirror keeps ~1.5x
// more keys per cache line for the same raw words and detections.
func NewSemiJoin(in Operator, col *storage.Column, ht *hashmap.U64, o *Opts) *SemiJoin {
	bits, keyMax := ops.BuildKeyBits(ht)
	var lanes *bitpack.Lanes
	if o == nil || !o.NoPacked {
		if l := col.Packed(); l != nil && l.Len() == col.Len() {
			lanes = l
		}
	}
	return &SemiJoin{
		in: in, col: col, code: col.Code(), lanes: lanes, ht: ht,
		keyBits: bits, keyMax: keyMax,
		detect: o.detect(), log: o.log(),
		buf: make([]uint32, VectorSize),
	}
}

// Next implements Operator.
func (j *SemiJoin) Next(pos []uint32) (int, bool, error) {
	for {
		n, done, err := j.in.Next(j.buf)
		if err != nil {
			return 0, done, err
		}
		out := 0
		for _, p := range j.buf[:n] {
			var v uint64
			if j.lanes != nil {
				v = j.lanes.Get(int(p))
			} else {
				v = j.col.Get(int(p))
			}
			if j.code != nil {
				d, ok := j.code.Check(v)
				if !ok {
					if j.detect {
						if j.log != nil {
							j.log.Record(j.col.Name(), uint64(p))
						}
						continue
					}
					// Late detection: the softened garbage key simply
					// misses the table below.
				}
				v = d
			}
			var hit bool
			if j.keyBits != nil {
				hit = v <= j.keyMax && j.keyBits[v>>6]&(1<<(v&63)) != 0
			} else {
				_, hit = j.ht.Get(v)
			}
			if hit {
				pos[out] = p
				out++
			}
		}
		if out > 0 || done {
			return out, done, nil
		}
	}
}

// SumProduct drains the pipeline and accumulates Σ a[i]*b[i] over the
// surviving positions - the Q1.x aggregate. Hardened inputs follow
// Eq. 7c exactly like the column-at-a-time operator.
func SumProduct(in Operator, a, b *storage.Column, o *Opts) (uint64, *an.Code, error) {
	detect := o.detect()
	log := o.log()
	codeA, codeB := a.Code(), b.Code()
	if (codeA == nil) != (codeB == nil) {
		return 0, nil, fmt.Errorf("vat: sum-product needs both inputs plain or both hardened")
	}
	var invB uint64
	if codeB != nil {
		invB = an.InverseMod2N(codeB.A(), 64)
	}
	var sum uint64
	pos := make([]uint32, VectorSize)
	for {
		n, done, err := in.Next(pos)
		if err != nil {
			return 0, nil, err
		}
		for _, p := range pos[:n] {
			av, bv := a.Get(int(p)), b.Get(int(p))
			if codeA == nil {
				sum += av * bv
				continue
			}
			if detect {
				okA := codeA.IsValid(av)
				okB := codeB.IsValid(bv)
				if !okA || !okB {
					if log != nil {
						if !okA {
							log.Record(a.Name(), uint64(p))
						}
						if !okB {
							log.Record(b.Name(), uint64(p))
						}
					}
					continue
				}
			}
			sum += av * bv * invB
		}
		if done {
			break
		}
	}
	if codeA == nil {
		return sum, nil, nil
	}
	acc, err := an.New(codeA.A(), 48)
	if err != nil {
		return 0, nil, err
	}
	if detect {
		if _, ok := acc.Check(sum); !ok && log != nil {
			log.Record(ops.VecLogName("sum"), 0)
		}
	}
	return acc.Decode(sum), acc, nil
}
