package vat

import (
	"testing"

	"ahead/internal/an"
	"ahead/internal/exec"
	"ahead/internal/ops"
	"ahead/internal/ssb"
	"ahead/internal/storage"
)

// q1Pipeline runs the Q1.1 flight through the vector-at-a-time engine
// over the given physical tables (plain or hardened).
func q1Pipeline(t *testing.T, lineorder, date *storage.Table, o *Opts) uint64 {
	t.Helper()
	// Build the date hash set with the column-at-a-time machinery (the
	// build side is tiny; both engines share it).
	opsOpts := &ops.Opts{Detect: o.detect(), Log: o.log()}
	yearSel, err := ops.Filter(date.MustColumn("d_year"), 1993, 1993, opsOpts)
	if err != nil {
		t.Fatal(err)
	}
	ht, err := ops.HashBuild(date.MustColumn("d_datekey"), yearSel, opsOpts)
	if err != nil {
		t.Fatal(err)
	}

	scan, err := NewScan(lineorder.MustColumn("lo_discount"), 1, 3, o)
	if err != nil {
		t.Fatal(err)
	}
	filt, err := NewFilter(scan, lineorder.MustColumn("lo_quantity"), 0, 24, o)
	if err != nil {
		t.Fatal(err)
	}
	join := NewSemiJoin(filt, lineorder.MustColumn("lo_orderdate"), ht, o)
	sum, _, err := SumProduct(join, lineorder.MustColumn("lo_extendedprice"), lineorder.MustColumn("lo_discount"), o)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func TestVATAgreesWithColumnAtATime(t *testing.T) {
	data, err := ssb.Generate(0.004, 21)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	ref, _, err := exec.Run(db, exec.Unprotected, ops.Scalar, ssb.Queries["Q1.1"])
	if err != nil {
		t.Fatal(err)
	}
	want := ref.Aggs[0]
	if want == 0 {
		t.Fatal("degenerate workload")
	}

	// Unprotected vector-at-a-time.
	got := q1Pipeline(t, db.Plain("lineorder"), db.Plain("date"), &Opts{})
	if got != want {
		t.Fatalf("unprotected VAT = %d, want %d", got, want)
	}
	// Hardened, late (no per-value checks).
	got = q1Pipeline(t, db.Hardened("lineorder"), db.Hardened("date"), &Opts{})
	if got != want {
		t.Fatalf("late VAT = %d, want %d", got, want)
	}
	// Hardened, continuous.
	log := ops.NewErrorLog()
	got = q1Pipeline(t, db.Hardened("lineorder"), db.Hardened("date"), &Opts{Detect: true, Log: log})
	if got != want {
		t.Fatalf("continuous VAT = %d, want %d", got, want)
	}
	if log.Count() != 0 {
		t.Fatalf("clean data logged %d", log.Count())
	}
}

func TestVATContinuousDetection(t *testing.T) {
	data, err := ssb.Generate(0.004, 21)
	if err != nil {
		t.Fatal(err)
	}
	db, err := exec.NewDB(data.Tables(), storage.LargestCodeChooser)
	if err != nil {
		t.Fatal(err)
	}
	lo := db.Hardened("lineorder")
	// Flip bits in the scanned filter column: the source operator is the
	// first to touch them.
	disc := lo.MustColumn("lo_discount")
	disc.Corrupt(100, 1<<4)
	disc.Corrupt(2000, 1<<9)
	log := ops.NewErrorLog()
	q1Pipeline(t, lo, db.Hardened("date"), &Opts{Detect: true, Log: log})
	pos, err := log.Positions("lo_discount")
	if err != nil {
		t.Fatal(err)
	}
	if len(pos) != 2 || pos[0] != 100 || pos[1] != 2000 {
		t.Fatalf("positions %v", pos)
	}
	// Without detection the flips pass silently (the late caveat).
	log2 := ops.NewErrorLog()
	q1Pipeline(t, lo, db.Hardened("date"), &Opts{Log: log2})
	if log2.Count() != 0 {
		t.Fatal("late VAT must not detect")
	}
}

func TestOperatorEdgeCases(t *testing.T) {
	col, err := storage.NewColumn("v", storage.TinyInt)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ { // spans several batches
		col.Append(uint64(i % 100))
	}
	// Inverted range: empty scan.
	scan, err := NewScan(col, 5, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]uint32, VectorSize)
	n, done, err := scan.Next(pos)
	if err != nil || n != 0 || !done {
		t.Fatalf("inverted scan: n=%d done=%v err=%v", n, done, err)
	}
	// Bounds clamp: hi beyond the width selects everything.
	scan, _ = NewScan(col, 0, 1<<40, nil)
	total := 0
	for {
		n, done, err := scan.Next(pos)
		if err != nil {
			t.Fatal(err)
		}
		total += n
		if done {
			break
		}
	}
	if total != 3000 {
		t.Fatalf("clamped scan selected %d", total)
	}
	// Filter that drains multiple upstream batches before producing.
	scan, _ = NewScan(col, 0, 99, nil)
	filt, err := NewFilter(scan, col, 99, 99, nil)
	if err != nil {
		t.Fatal(err)
	}
	total = 0
	for {
		n, done, err := filt.Next(pos)
		if err != nil {
			t.Fatal(err)
		}
		total += n
		if done {
			break
		}
	}
	if total != 30 {
		t.Fatalf("selective filter found %d, want 30", total)
	}
}

func TestSumProductRejectsMixedHardening(t *testing.T) {
	plain, _ := storage.NewColumn("a", storage.TinyInt)
	plain.Append(1)
	other, _ := storage.NewColumn("b", storage.TinyInt)
	other.Append(2)
	hardened, err := other.Harden(mustCode(t))
	if err != nil {
		t.Fatal(err)
	}
	scan, _ := NewScan(plain, 0, 255, nil)
	if _, _, err := SumProduct(scan, plain, hardened, nil); err == nil {
		t.Fatal("mixed hardening must error")
	}
}

func mustCode(t *testing.T) *an.Code {
	t.Helper()
	c, err := storage.LargestCodeChooser(8)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
