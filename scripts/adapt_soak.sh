#!/usr/bin/env bash
# Adaptive-hardening soak gate (run by `make adapt-soak` and the CI
# adapt-soak job): the closed-loop proof that the controller re-hardens
# live columns under a fault-rate step without the service missing a
# beat, in three phases against one -adapt server (columns start at the
# weakest published code, 1s controller ticks):
#
#   1. Clean traffic: queries flow, nothing to detect, nothing happens.
#   2. Fault step: every request plants a flip into lo_revenue first.
#      The controller must observe the detections and climb the column's
#      code ladder in the background (>= 1 re-harden).
#   3. Recovery: clean traffic again; the observed fault rate decays and
#      the hazard bound must end up held on every adaptable column.
#
# Gates: every loadgen run exits 0, zero failed queries over all three
# phases, at least one background re-harden, bound_held true at the end,
# and a clean SIGTERM drain.
set -euo pipefail

ADDR=127.0.0.1:18082
BASE=http://$ADDR
LOG=$(mktemp)
trap 'kill $SERVE_PID 2>/dev/null || true; cat "$LOG"; rm -f "$LOG"' EXIT

go build -o bin/ahead-serve ./cmd/ahead-serve
go build -o bin/ahead-loadgen ./cmd/ahead-loadgen

wait_ready() {
    for _ in $(seq 1 120); do
        if curl -fsS "$1/readyz" >/dev/null 2>&1; then return 0; fi
        if ! kill -0 "$2" 2>/dev/null; then
            echo "FAIL: server died during startup" >&2; exit 1
        fi
        sleep 0.5
    done
    echo "FAIL: server never became ready" >&2; exit 1
}

metric() { echo "$2" | awk -v m="$1" '$1 == m { print $2 }'; }

./bin/ahead-serve -addr "$ADDR" -sf 0.01 -inject-seed 42 \
    -adapt -adapt-target 1e-7 -adapt-interval 1s \
    -max-inflight 8 -max-queue 128 -queue-timeout 1s >"$LOG" 2>&1 &
SERVE_PID=$!
wait_ready "$BASE" $SERVE_PID

# Tighten the anti-flap hold over HTTP so the ladder climbs within the
# soak window - and prove the policy endpoint round-trips while serving.
curl -fsS -X POST -d '{"cool_ticks": 2}' "$BASE/adapt/policy" >/dev/null
curl -fsS "$BASE/adapt/status" | grep -q '"cool_ticks":2' \
    || { echo "FAIL: policy update did not stick" >&2; exit 1; }

echo "=== phase 1: clean traffic ==="
./bin/ahead-loadgen -addr "$BASE" -concurrency 8 -duration 8s -seed 7

echo "=== phase 2: fault-rate step on lo_revenue ==="
./bin/ahead-loadgen -addr "$BASE" -concurrency 8 -duration 18s \
    -inject-rate 1.0 -inject-col lo_revenue -seed 8

echo "=== phase 3: recovery ==="
./bin/ahead-loadgen -addr "$BASE" -concurrency 8 -duration 10s -seed 9

sleep 3 # a few controller ticks with the fault rate decayed
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -E '^ahead_(queries|adapt)' || true
STATUS=$(curl -fsS "$BASE/adapt/status")

SERVED=$(metric ahead_queries_served_total "$METRICS")
FAILED=$(metric ahead_queries_failed_total "$METRICS")
REHARDENS=$(metric ahead_adapt_rehardens_total "$METRICS")
FAILED_REHARDENS=$(metric ahead_adapt_failed_rehardens_total "$METRICS")
BOUND=$(metric ahead_adapt_bound_held "$METRICS")

[ "$SERVED" -gt 0 ] || { echo "FAIL: nothing served" >&2; exit 1; }
[ "$FAILED" -eq 0 ] || { echo "FAIL: $FAILED queries failed" >&2; exit 1; }
[ "$REHARDENS" -ge 1 ] || { echo "FAIL: controller never re-hardened under the fault step" >&2; exit 1; }
[ "$FAILED_REHARDENS" -eq 0 ] || { echo "FAIL: $FAILED_REHARDENS re-hardens failed" >&2; exit 1; }
[ "$BOUND" -eq 1 ] || { echo "FAIL: hazard bound not held after recovery" >&2; echo "$STATUS" >&2; exit 1; }
echo "$STATUS" | grep -q '"bound_held":true' \
    || { echo "FAIL: /adapt/status disagrees with the metric" >&2; exit 1; }

echo "--- graceful drain ---"
kill -TERM $SERVE_PID
for _ in $(seq 1 60); do
    if ! kill -0 $SERVE_PID 2>/dev/null; then break; fi
    sleep 0.5
done
if kill -0 $SERVE_PID 2>/dev/null; then
    echo "FAIL: server did not drain within 30s" >&2; exit 1
fi
wait $SERVE_PID || true
grep -q '^bye$' "$LOG" || { echo "FAIL: server exited without draining" >&2; exit 1; }

echo "adapt-soak OK: served=$SERVED rehardens=$REHARDENS bound_held=$BOUND"
