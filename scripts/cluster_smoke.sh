#!/usr/bin/env bash
# Cluster smoke gate (run by `make cluster-smoke` and the CI
# cluster-smoke job), in five acts:
#
#   1. Differential: 3 shards + router + a single-node reference at
#      SF 0.01. Every merged result the router returns must match the
#      reference byte for byte at full 3/3 shard coverage, with zero
#      failed queries and zero detections.
#   2. Injection: the load generator plants faults through the router's
#      /inject relay. Queries must keep succeeding at 3/3 coverage and
#      the corruptions must surface in the router's merge-point
#      detection counter - never as failures.
#   3. Shard loss: kill one shard of the single-replica router. It must
#      quarantine it and keep answering in explicit degraded mode (2/3
#      coverage), stay ready, and then drain cleanly on SIGTERM.
#   4. Replica takeover: a second router with two replicas per slice.
#      Killing a primary must NOT degrade service - the policy engine
#      quarantines it, promotes the replica, records the transition on
#      /alerts, and every response stays 3/3 and byte-identical to the
#      single-node reference.
#   5. Anti-entropy: corrupt a replica's hardened column through
#      /inject, then POST /sync/from-peer naming its healthy twin. The
#      chunk-digest sync must heal the column (chunks_healed > 0, a
#      second pass finds nothing), and the replica's answers must come
#      back byte-identical to the peer's with zero detections.
set -euo pipefail

REF_ADDR=127.0.0.1:18100
S1_ADDR=127.0.0.1:18101
S2_ADDR=127.0.0.1:18102
S3_ADDR=127.0.0.1:18103
P1_ADDR=127.0.0.1:18104
P2_ADDR=127.0.0.1:18105
P3_ADDR=127.0.0.1:18106
R1_ADDR=127.0.0.1:18107
R2_ADDR=127.0.0.1:18108
R3_ADDR=127.0.0.1:18109
RT_ADDR=127.0.0.1:18090
RT2_ADDR=127.0.0.1:18091
REF=http://$REF_ADDR
RT=http://$RT_ADDR
RT2=http://$RT2_ADDR

REF_LOG=$(mktemp) S1_LOG=$(mktemp) S2_LOG=$(mktemp) S3_LOG=$(mktemp)
P1_LOG=$(mktemp) P2_LOG=$(mktemp) P3_LOG=$(mktemp)
R1_LOG=$(mktemp) R2_LOG=$(mktemp) R3_LOG=$(mktemp) RT_LOG=$(mktemp) RT2_LOG=$(mktemp)
PIDS=()
cleanup() {
    for p in "${PIDS[@]}"; do kill "$p" 2>/dev/null || true; done
    echo "--- router log ---"; cat "$RT_LOG"
    echo "--- replica router log ---"; cat "$RT2_LOG"
    rm -f "$REF_LOG" "$S1_LOG" "$S2_LOG" "$S3_LOG" "$P1_LOG" "$P2_LOG" "$P3_LOG" \
        "$R1_LOG" "$R2_LOG" "$R3_LOG" "$RT_LOG" "$RT2_LOG"
}
trap cleanup EXIT

go build -o bin/ahead-serve ./cmd/ahead-serve
go build -o bin/ahead-router ./cmd/ahead-router
go build -o bin/ahead-loadgen ./cmd/ahead-loadgen

wait_ready() {
    for _ in $(seq 1 120); do
        if curl -fsS "$1/readyz" >/dev/null 2>&1; then return 0; fi
        if ! kill -0 "$2" 2>/dev/null; then
            echo "FAIL: $3 died during startup" >&2; exit 1
        fi
        sleep 0.5
    done
    echo "FAIL: $3 never became ready" >&2; exit 1
}

metric() { echo "$2" | awk -v m="$1" '$1 == m { print $2 }'; }

echo "=== boot: 3 shards + single-node reference + router ==="
./bin/ahead-serve -addr "$REF_ADDR" -sf 0.01 >"$REF_LOG" 2>&1 &
REF_PID=$!; PIDS+=("$REF_PID")
./bin/ahead-serve -addr "$S1_ADDR" -sf 0.01 -shard 1/3 -inject-seed 42 >"$S1_LOG" 2>&1 &
S1_PID=$!; PIDS+=("$S1_PID")
./bin/ahead-serve -addr "$S2_ADDR" -sf 0.01 -shard 2/3 -inject-seed 43 >"$S2_LOG" 2>&1 &
S2_PID=$!; PIDS+=("$S2_PID")
./bin/ahead-serve -addr "$S3_ADDR" -sf 0.01 -shard 3/3 -inject-seed 44 >"$S3_LOG" 2>&1 &
S3_PID=$!; PIDS+=("$S3_PID")
wait_ready "$REF" "$REF_PID" reference
wait_ready "http://$S1_ADDR" "$S1_PID" shard1
wait_ready "http://$S2_ADDR" "$S2_PID" shard2
wait_ready "http://$S3_ADDR" "$S3_PID" shard3

./bin/ahead-router -addr "$RT_ADDR" \
    -shards "http://$S1_ADDR,http://$S2_ADDR,http://$S3_ADDR" \
    -probe-interval 200ms -quarantine-after 3 -backoff-base 2s >"$RT_LOG" 2>&1 &
RT_PID=$!; PIDS+=("$RT_PID")
wait_ready "$RT" "$RT_PID" router

echo "=== act 1: merged results must equal the single-node reference ==="
./bin/ahead-loadgen -addr "$RT" -concurrency 16 -duration 10s -seed 7 \
    -reference "$REF" -expect-shards 3/3

METRICS=$(curl -fsS "$RT/metrics")
SERVED=$(metric ahead_router_queries_total "$METRICS")
FAILED=$(metric ahead_router_queries_failed_total "$METRICS")
DETECTED=$(metric ahead_router_detected_errors_total "$METRICS")
[ "$SERVED" -gt 0 ] || { echo "FAIL: router served nothing" >&2; exit 1; }
[ "$FAILED" -eq 0 ] || { echo "FAIL: $FAILED router queries failed" >&2; exit 1; }
[ "$DETECTED" -eq 0 ] || { echo "FAIL: $DETECTED detections without injection" >&2; exit 1; }

echo "=== act 2: injected faults must be detected at the merge, not failed ==="
./bin/ahead-loadgen -addr "$RT" -concurrency 16 -duration 10s -seed 11 \
    -inject-rate 0.05 -expect-shards 3/3

METRICS=$(curl -fsS "$RT/metrics")
echo "$METRICS" | grep -E '^ahead_router' || true
FAILED=$(metric ahead_router_queries_failed_total "$METRICS")
DETECTED=$(metric ahead_router_detected_errors_total "$METRICS")
[ "$FAILED" -eq 0 ] || { echo "FAIL: $FAILED router queries failed under injection" >&2; exit 1; }
[ "$DETECTED" -gt 0 ] || { echo "FAIL: injected faults never surfaced at the merge" >&2; exit 1; }

echo "=== act 3: shard loss must degrade service, not break it ==="
kill -9 "$S3_PID"
# Give the probe loop time to accumulate consecutive failures and
# quarantine the dead shard (200ms probes, threshold 3).
sleep 3

./bin/ahead-loadgen -addr "$RT" -concurrency 8 -duration 5s -seed 13 \
    -expect-shards 2/3

METRICS=$(curl -fsS "$RT/metrics")
DEGRADED=$(metric ahead_router_queries_degraded_total "$METRICS")
UP3=$(echo "$METRICS" | awk '$1 == "ahead_router_shard_up{shard=\"2\",replica=\"0\"}" { print $2 }')
QUAR3=$(echo "$METRICS" | awk '$1 == "ahead_router_shard_quarantines_total{shard=\"2\",replica=\"0\"}" { print $2 }')
[ "$DEGRADED" -gt 0 ] || { echo "FAIL: no degraded responses after shard loss" >&2; exit 1; }
[ "$UP3" = 0 ] || { echo "FAIL: dead shard still marked up" >&2; exit 1; }
[ "$QUAR3" -gt 0 ] || { echo "FAIL: dead shard never quarantined" >&2; exit 1; }
curl -fsS "$RT/readyz" >/dev/null || { echo "FAIL: router not ready in degraded mode" >&2; exit 1; }

echo "--- drain the single-replica router ---"
kill -TERM "$RT_PID"
for _ in $(seq 1 60); do
    if ! kill -0 "$RT_PID" 2>/dev/null; then break; fi
    sleep 0.5
done
if kill -0 "$RT_PID" 2>/dev/null; then
    echo "FAIL: router did not drain within 30s" >&2; exit 1
fi
wait "$RT_PID" || true
grep -q '^bye$' "$RT_LOG" || { echo "FAIL: router exited without draining" >&2; exit 1; }

echo "=== act 4: killing a primary must promote its replica, not degrade ==="
# A fresh 3-slice x 2-replica tier: clean primaries (acts 1-3 planted
# persistent corruption in S1/S2 via /inject, so they cannot back a
# byte-identical comparison) plus a second replica of each slice -
# identical deterministic partitions from the same (sf, seed, shard).
./bin/ahead-serve -addr "$P1_ADDR" -sf 0.01 -shard 1/3 >"$P1_LOG" 2>&1 &
P1_PID=$!; PIDS+=("$P1_PID")
./bin/ahead-serve -addr "$P2_ADDR" -sf 0.01 -shard 2/3 >"$P2_LOG" 2>&1 &
P2_PID=$!; PIDS+=("$P2_PID")
./bin/ahead-serve -addr "$P3_ADDR" -sf 0.01 -shard 3/3 >"$P3_LOG" 2>&1 &
P3_PID=$!; PIDS+=("$P3_PID")
./bin/ahead-serve -addr "$R1_ADDR" -sf 0.01 -shard 1/3 -replica 1 -inject-seed 51 >"$R1_LOG" 2>&1 &
R1_PID=$!; PIDS+=("$R1_PID")
./bin/ahead-serve -addr "$R2_ADDR" -sf 0.01 -shard 2/3 -replica 1 >"$R2_LOG" 2>&1 &
R2_PID=$!; PIDS+=("$R2_PID")
./bin/ahead-serve -addr "$R3_ADDR" -sf 0.01 -shard 3/3 -replica 1 >"$R3_LOG" 2>&1 &
R3_PID=$!; PIDS+=("$R3_PID")
wait_ready "http://$P1_ADDR" "$P1_PID" primary1
wait_ready "http://$P2_ADDR" "$P2_PID" primary2
wait_ready "http://$P3_ADDR" "$P3_PID" primary3
wait_ready "http://$R1_ADDR" "$R1_PID" replica1
wait_ready "http://$R2_ADDR" "$R2_PID" replica2
wait_ready "http://$R3_ADDR" "$R3_PID" replica3

./bin/ahead-router -addr "$RT2_ADDR" \
    -shards "http://$P1_ADDR|http://$R1_ADDR,http://$P2_ADDR|http://$R2_ADDR,http://$P3_ADDR|http://$R3_ADDR" \
    -probe-interval 200ms -quarantine-after 3 -backoff-base 2s -hedge-delay 50ms >"$RT2_LOG" 2>&1 &
RT2_PID=$!; PIDS+=("$RT2_PID")
wait_ready "$RT2" "$RT2_PID" replica-router

# Healthy baseline: full coverage, byte-identical to the single node.
./bin/ahead-loadgen -addr "$RT2" -concurrency 8 -duration 5s -seed 17 \
    -reference "$REF" -expect-shards 3/3

# Kill slice 2's primary mid-flight; the replica must absorb every query.
kill -9 "$P2_PID"
sleep 2
./bin/ahead-loadgen -addr "$RT2" -concurrency 8 -duration 5s -seed 19 \
    -reference "$REF" -expect-shards 3/3

METRICS=$(curl -fsS "$RT2/metrics")
echo "$METRICS" | grep -E '^ahead_router' || true
DEGRADED2=$(metric ahead_router_queries_degraded_total "$METRICS")
UP2=$(echo "$METRICS" | awk '$1 == "ahead_router_shard_up{shard=\"1\",replica=\"0\"}" { print $2 }')
PREF2=$(echo "$METRICS" | awk '$1 == "ahead_router_slice_preferred_replica{shard=\"1\"}" { print $2 }')
PROMOTES=$(echo "$METRICS" | awk '$1 == "ahead_router_remediations_total{action=\"promote\"}" { print $2 }')
TRANSITIONS=$(echo "$METRICS" | awk '$1 == "ahead_router_health_transitions_total{to=\"quarantined\"}" { print $2 }')
[ "$DEGRADED2" -eq 0 ] || { echo "FAIL: $DEGRADED2 degraded responses despite live replicas" >&2; exit 1; }
[ "$UP2" = 0 ] || { echo "FAIL: killed primary still marked up" >&2; exit 1; }
[ "$PREF2" = 1 ] || { echo "FAIL: slice 2 never promoted its replica (preferred=$PREF2)" >&2; exit 1; }
[ "$PROMOTES" -gt 0 ] || { echo "FAIL: no promote remediation recorded" >&2; exit 1; }
[ "$TRANSITIONS" -gt 0 ] || { echo "FAIL: no quarantine transition recorded" >&2; exit 1; }

ALERTS=$(curl -fsS "$RT2/alerts")
echo "$ALERTS" | grep -q '"quarantined"' || { echo "FAIL: /alerts missing the quarantine transition" >&2; exit 1; }
echo "$ALERTS" | grep -q '"promote"' || { echo "FAIL: /alerts missing the promote remediation" >&2; exit 1; }

echo "--- graceful drain ---"
kill -TERM "$RT2_PID"
for _ in $(seq 1 60); do
    if ! kill -0 "$RT2_PID" 2>/dev/null; then break; fi
    sleep 0.5
done
if kill -0 "$RT2_PID" 2>/dev/null; then
    echo "FAIL: replica router did not drain within 30s" >&2; exit 1
fi
wait "$RT2_PID" || true
grep -q '^bye$' "$RT2_LOG" || { echo "FAIL: replica router exited without draining" >&2; exit 1; }

echo "=== act 5: anti-entropy sync must heal a corrupted replica from its peer ==="
# R1 and P1 hold identical shard-1/3 partitions. An unfiltered sum
# touches every row of the target column, so planted corruption cannot
# hide from the comparison.
Q='{"adhoc":{"table":"lineorder","agg":"sum","agg_col":"lo_quantity"},"mode":"continuous"}'
strip_elapsed() { sed -E 's/"elapsed_ms":[0-9.eE+-]+//g'; }
REF_BODY=$(curl -fsS -X POST "http://$P1_ADDR/query" -d "$Q" | strip_elapsed)

INJ=$(curl -fsS -X POST "http://$R1_ADDR/inject" -d '{"col":"lo_quantity","count":8}')
echo "injected: $INJ"
CORRUPT_BODY=$(curl -fsS -X POST "http://$R1_ADDR/query" -d "$Q" | strip_elapsed)
echo "$CORRUPT_BODY" | grep -q '"detected"' \
    || { echo "FAIL: corrupted replica reported no detections" >&2; exit 1; }

sum_healed() { grep -o '"chunks_healed":[0-9]*' | awk -F: '{ s += $2 } END { print s+0 }'; }
SYNC=$(curl -fsS -X POST "http://$R1_ADDR/sync/from-peer" -d "{\"peer\":\"http://$P1_ADDR\"}")
echo "sync: $SYNC"
HEALED1=$(echo "$SYNC" | sum_healed)
[ "$HEALED1" -gt 0 ] || { echo "FAIL: sync healed no chunks" >&2; exit 1; }
echo "$SYNC" | grep -q '"skipped"' && { echo "FAIL: sync skipped a column" >&2; exit 1; }

# Convergence: an immediate second pass must find nothing to heal.
HEALED2=$(curl -fsS -X POST "http://$R1_ADDR/sync/from-peer" \
    -d "{\"peer\":\"http://$P1_ADDR\"}" | sum_healed)
[ "$HEALED2" -eq 0 ] || { echo "FAIL: second sync pass healed $HEALED2 chunks" >&2; exit 1; }

POST_BODY=$(curl -fsS -X POST "http://$R1_ADDR/query" -d "$Q" | strip_elapsed)
echo "$POST_BODY" | grep -q '"detected"' \
    && { echo "FAIL: healed replica still reports detections" >&2; exit 1; }
[ "$POST_BODY" = "$REF_BODY" ] \
    || { echo "FAIL: healed replica diverges from its peer:" >&2
         echo "peer:    $REF_BODY" >&2
         echo "replica: $POST_BODY" >&2; exit 1; }

R1_METRICS=$(curl -fsS "http://$R1_ADDR/metrics")
SYNC_RUNS=$(metric ahead_sync_runs_total "$R1_METRICS")
SYNC_CHUNKS=$(metric ahead_sync_healed_chunks_total "$R1_METRICS")
[ "$SYNC_RUNS" -eq 2 ] || { echo "FAIL: expected 2 sync runs, saw $SYNC_RUNS" >&2; exit 1; }
[ "$SYNC_CHUNKS" -gt 0 ] || { echo "FAIL: no healed chunks counted" >&2; exit 1; }

for spec in "$S1_PID:$S1_LOG:shard1" "$S2_PID:$S2_LOG:shard2" \
            "$P1_PID:$P1_LOG:primary1" "$P3_PID:$P3_LOG:primary3" \
            "$R1_PID:$R1_LOG:replica1" "$R2_PID:$R2_LOG:replica2" \
            "$R3_PID:$R3_LOG:replica3" "$REF_PID:$REF_LOG:reference"; do
    pid=${spec%%:*}; rest=${spec#*:}; log=${rest%%:*}; name=${rest#*:}
    kill -TERM "$pid"
    for _ in $(seq 1 60); do
        if ! kill -0 "$pid" 2>/dev/null; then break; fi
        sleep 0.5
    done
    wait "$pid" || true
    grep -q '^bye$' "$log" || { echo "FAIL: $name exited without draining" >&2; exit 1; }
done

echo "cluster-smoke OK: served=$SERVED detected=$DETECTED degraded=$DEGRADED promotes=$PROMOTES sync_healed=$SYNC_CHUNKS"
