#!/usr/bin/env bash
# Serving-layer smoke gate (run by `make serve-smoke` and the CI
# serve-smoke job), in two acts:
#
#   1. Acceptance posture (inflight 8, queue 128, fault injection on):
#      a 12s closed-loop run at concurrency 64 must complete with zero
#      failed queries, nonzero detections, a balanced scratch arena,
#      and a clean SIGTERM drain.
#   2. Strict posture (inflight 2, queue 8): an overload burst must be
#      shed with 429s - never absorbed silently, never failed with 5xx.
set -euo pipefail

ADDR=127.0.0.1:18080
BASE=http://$ADDR
LOG=$(mktemp)
trap 'kill $SERVE_PID 2>/dev/null || true; cat "$LOG"; rm -f "$LOG"' EXIT

go build -o bin/ahead-serve ./cmd/ahead-serve
go build -o bin/ahead-loadgen ./cmd/ahead-loadgen

wait_ready() {
    for _ in $(seq 1 120); do
        if curl -fsS "$1/readyz" >/dev/null 2>&1; then return 0; fi
        if ! kill -0 "$2" 2>/dev/null; then
            echo "FAIL: server died during startup" >&2; exit 1
        fi
        sleep 0.5
    done
    echo "FAIL: server never became ready" >&2; exit 1
}

metric() { echo "$2" | awk -v m="$1" '$1 == m { print $2 }'; }

echo "=== act 1: acceptance posture ==="
./bin/ahead-serve -addr "$ADDR" -sf 0.01 -inject-seed 42 \
    -max-inflight 8 -max-queue 128 -queue-timeout 1s >"$LOG" 2>&1 &
SERVE_PID=$!
wait_ready "$BASE" $SERVE_PID
curl -fsS "$BASE/healthz" >/dev/null

./bin/ahead-loadgen -addr "$BASE" -concurrency 64 -duration 12s \
    -inject-rate 0.05 -seed 7

sleep 1 # let in-flight stragglers finish before reading gauges
METRICS=$(curl -fsS "$BASE/metrics")
echo "$METRICS" | grep -E '^ahead_(queries|detected|repair|injected|scratch)' || true

SERVED=$(metric ahead_queries_served_total "$METRICS")
FAILED=$(metric ahead_queries_failed_total "$METRICS")
SCRATCH=$(metric ahead_scratch_live_buffers "$METRICS")
DETECTED=$(metric ahead_detected_errors_total "$METRICS")
INJECTED=$(metric ahead_injected_faults_total "$METRICS")

[ "$SERVED" -gt 0 ] || { echo "FAIL: nothing served" >&2; exit 1; }
[ "$FAILED" -eq 0 ] || { echo "FAIL: $FAILED queries failed" >&2; exit 1; }
[ "$SCRATCH" -eq 0 ] || { echo "FAIL: $SCRATCH scratch buffers leaked" >&2; exit 1; }
[ "$INJECTED" -gt 0 ] || { echo "FAIL: fault injection never ran" >&2; exit 1; }
[ "$DETECTED" -gt 0 ] || { echo "FAIL: injected faults were never detected" >&2; exit 1; }

echo "--- graceful drain ---"
kill -TERM $SERVE_PID
for _ in $(seq 1 60); do
    if ! kill -0 $SERVE_PID 2>/dev/null; then break; fi
    sleep 0.5
done
if kill -0 $SERVE_PID 2>/dev/null; then
    echo "FAIL: server did not drain within 30s" >&2; exit 1
fi
wait $SERVE_PID || true
grep -q '^bye$' "$LOG" || { echo "FAIL: server exited without draining" >&2; exit 1; }

echo "=== act 2: strict posture, overload must shed ==="
./bin/ahead-serve -addr "$ADDR" -sf 0.01 \
    -max-inflight 2 -max-queue 8 -queue-timeout 100ms >"$LOG" 2>&1 &
SERVE_PID=$!
wait_ready "$BASE" $SERVE_PID

# 429s are the expected outcome here, so the loadgen exit status is
# informational; the metrics below are the gate.
./bin/ahead-loadgen -addr "$BASE" -concurrency 64 -duration 5s -seed 9 || true

METRICS=$(curl -fsS "$BASE/metrics")
SHED=$(metric ahead_queries_shed_total "$METRICS")
FAILED=$(metric ahead_queries_failed_total "$METRICS")
[ "$SHED" -gt 0 ] || { echo "FAIL: overload was not shed with 429s" >&2; exit 1; }
[ "$FAILED" -eq 0 ] || { echo "FAIL: overload produced $FAILED failures" >&2; exit 1; }

kill -TERM $SERVE_PID
wait $SERVE_PID || true

echo "serve-smoke OK: served=$SERVED detected=$DETECTED injected=$INJECTED shed=$SHED"
